"""The θ-filtered space of potential links with per-feature range indexes.

This is the environment ALEX explores (Sections 4.2 and 6.1). The space maps
every surviving entity pair to its feature set, and keeps for each feature
key a score-sorted index so an exploration action — "all links whose feature
``(p1, p2)`` scores within ``[v−δ, v+δ]``" — is two binary searches plus a
slice, independent of the space size.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Mapping

from repro import obs
from repro.errors import FeatureSpaceError
from repro.features.blocking import blocked_pairs
from repro.features.feature_set import (
    DEFAULT_THETA,
    FeatureKey,
    FeatureSet,
    build_feature_set,
    build_feature_set_prepared,
)
from repro.links import Link
from repro.rdf.entity import Entity, entities_of
from repro.rdf.graph import Graph
from repro.rdf.terms import URIRef
from repro.similarity.prepared import (
    PreparedEntity,
    WireReader,
    WireWriter,
    flush_similarity_stats,
    prepare_entity,
)


class FeatureSpace:
    """All candidate pairs that pass θ, with fast per-feature range queries."""

    def __init__(self, theta: float = DEFAULT_THETA):
        if not (0.0 <= theta <= 1.0):
            raise FeatureSpaceError(f"theta must be in [0,1], got {theta}")
        self.theta = theta
        self._feature_sets: dict[Link, FeatureSet] = {}
        #: per-feature sorted lists of (score, link); parallel score arrays
        #: for bisect.
        self._index: dict[FeatureKey, list[tuple[float, Link]]] = {}
        self._scores_only: dict[FeatureKey, list[float]] = {}
        #: left URI → links, built at freeze time (fast links_of_left).
        self._by_left: dict[URIRef, list[Link]] = {}
        self._total_pairs_considered = 0
        self._frozen = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        left: Graph | Iterable[Entity],
        right: Graph | Iterable[Entity],
        theta: float = DEFAULT_THETA,
        use_blocking: bool = True,
        fast: bool = True,
        workers: int | None = 1,
    ) -> "FeatureSpace":
        """Build the space between two datasets.

        ``use_blocking=False`` scores *every* pair (the naive quadratic
        construction of Section 6.1, kept for the filtering experiment and
        the blocking ablation). ``fast=True`` (the default) routes scoring
        through the prepared-entity layer — normalized forms, token sets and
        typed values computed once per entity, a bounded memo cache on
        value-pair scores, and θ-aware upper bounds; admitted links and
        scores are bit-identical to ``fast=False`` (the parity test in
        ``tests/test_perf_fastpath.py`` enforces this). ``workers=N`` (N>1)
        partitions the left entities across processes via
        :func:`repro.core.parallel_mp.build_space_parallel` and merges the
        per-worker spaces and obs snapshots.
        """
        left_entities = list(entities_of(left) if isinstance(left, Graph) else left)
        right_entities = list(entities_of(right) if isinstance(right, Graph) else right)
        if workers is not None and workers > 1:
            from repro.core.parallel_mp import build_space_parallel

            return build_space_parallel(
                left_entities,
                right_entities,
                theta=theta,
                use_blocking=use_blocking,
                fast=fast,
                workers=workers,
            )
        return cls._build_single_process(left_entities, right_entities, theta, use_blocking, fast)

    @classmethod
    def _build_single_process(
        cls,
        left_entities: list[Entity],
        right_entities: list[Entity],
        theta: float,
        use_blocking: bool,
        fast: bool,
        freeze: bool = True,
    ) -> "FeatureSpace":
        space = cls(theta)
        if use_blocking:
            with obs.timer("space.build.block"):
                token_map: dict[Entity, set[str]] = {}
                pairs: Iterable[tuple[Entity, Entity]] = list(
                    blocked_pairs(left_entities, right_entities, token_map=token_map)
                )
        else:
            # the cross product stays lazy — materializing it would cost
            # O(|D1|·|D2|) memory just to attribute ~zero time to blocking
            pairs = ((l, r) for l in left_entities for r in right_entities)
        with obs.timer("space.build.score"):
            if fast:
                prepared: dict[Entity, PreparedEntity] = {}
                for left_entity, right_entity in pairs:
                    prepared_left = prepared.get(left_entity)
                    if prepared_left is None:
                        prepared_left = prepare_entity(left_entity)
                        prepared[left_entity] = prepared_left
                    prepared_right = prepared.get(right_entity)
                    if prepared_right is None:
                        prepared_right = prepare_entity(right_entity)
                        prepared[right_entity] = prepared_right
                    space.add_prepared_pair(prepared_left, prepared_right)
                flush_similarity_stats()
            else:
                for left_entity, right_entity in pairs:
                    space.add_pair(left_entity, right_entity)
        space._total_pairs_considered = len(left_entities) * len(right_entities)
        if freeze:
            with obs.timer("space.build.freeze"):
                space.freeze()
        # freeze=False: a pool worker building one partition delta — the
        # parent freezes the merged space once, so sorting here is waste
        return space

    def add_pair(self, left_entity: Entity, right_entity: Entity) -> FeatureSet | None:
        """Score one pair and admit it when any feature passes θ."""
        link = self._admissible_link(left_entity.uri, right_entity.uri)
        if not isinstance(link, Link):
            return link
        feature_set = build_feature_set(left_entity, right_entity, self.theta)
        return self._admit(link, feature_set)

    def add_prepared_pair(
        self, prepared_left: PreparedEntity, prepared_right: PreparedEntity
    ) -> FeatureSet | None:
        """Fast-path :meth:`add_pair` over prepared entities."""
        link = self._admissible_link(prepared_left.uri, prepared_right.uri)
        if not isinstance(link, Link):
            return link
        feature_set = build_feature_set_prepared(prepared_left, prepared_right, self.theta)
        return self._admit(link, feature_set)

    def _admissible_link(self, left_uri, right_uri) -> "Link | FeatureSet | None":
        """Shared admission preamble: the new link to score, an existing
        feature set for an already-seen pair, or None for non-URI subjects."""
        if self._frozen:
            raise FeatureSpaceError("cannot add pairs to a frozen FeatureSpace")
        if not isinstance(left_uri, URIRef) or not isinstance(right_uri, URIRef):
            return None
        link = Link(left_uri, right_uri)
        existing = self._feature_sets.get(link)
        if existing is not None:
            return existing
        # scanned vs admitted makes the θ-filter win measurable
        obs.inc("space.pairs.scanned")
        return link

    def _admit(self, link: Link, feature_set: FeatureSet | None) -> FeatureSet | None:
        if feature_set is None:
            return None
        obs.inc("space.pairs.admitted")
        self._feature_sets[link] = feature_set
        for key, score in feature_set.items():
            self._index.setdefault(key, []).append((score, link))
        return feature_set

    def freeze(self) -> None:
        """Sort the range indexes; the space becomes read-only."""
        for key, entries in self._index.items():
            entries.sort(key=lambda entry: (entry[0], entry[1].left.value, entry[1].right.value))
            self._scores_only[key] = [score for score, _ in entries]
        by_left: dict[URIRef, list[Link]] = {}
        for link in self._feature_sets:
            by_left.setdefault(link.left, []).append(link)
        self._by_left = by_left
        self._frozen = True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def feature_set(self, link: Link) -> FeatureSet | None:
        """The feature set of a link, or None when the pair is not in the
        (filtered) space."""
        return self._feature_sets.get(link)

    def explore(self, key: FeatureKey, center: float, step: float) -> list[Link]:
        """All links whose ``key`` feature scores within ``[center−step,
        center+step]`` — the action of Section 4.2."""
        if not self._frozen:
            raise FeatureSpaceError("freeze() the space before exploring")
        obs.inc("space.explore.calls")
        entries = self._index.get(key)
        if not entries:
            return []
        scores = self._scores_only[key]
        low = bisect.bisect_left(scores, center - step)
        high = bisect.bisect_right(scores, center + step)
        if high > low:
            obs.inc("space.explore.candidates", high - low)
        return [link for _, link in entries[low:high]]

    def feature_keys(self) -> list[FeatureKey]:
        return sorted(self._index, key=lambda k: (k[0].value, k[1].value))

    def links(self) -> Iterator[Link]:
        return iter(self._feature_sets)

    def links_of_left(self, left: URIRef) -> list[Link]:
        # getattr: spaces pickled before the index existed reload fine
        by_left = getattr(self, "_by_left", None)
        if self._frozen and by_left is not None:
            return list(by_left.get(left, ()))
        return [link for link in self._feature_sets if link.left == left]

    @property
    def size(self) -> int:
        """Number of pairs surviving the θ filter."""
        return len(self._feature_sets)

    @property
    def total_pairs_considered(self) -> int:
        """|D1| × |D2| — the unfiltered space size (Figure 5a baseline)."""
        return self._total_pairs_considered

    def __contains__(self, link: Link) -> bool:
        return link in self._feature_sets

    def __len__(self) -> int:
        return len(self._feature_sets)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Write the (frozen) space to a file; loading skips the rebuild.

        Space construction dominates pipeline start-up on larger datasets;
        a deployment builds once and reloads across restarts (the engine
        state has its own JSON persistence in :mod:`repro.core.persistence`).
        """
        import pickle

        if not self._frozen:
            raise FeatureSpaceError("freeze() the space before saving")
        with open(path, "wb") as handle:
            pickle.dump({"format": 1, "space": self}, handle)

    @classmethod
    def load(cls, path: str) -> "FeatureSpace":
        """Read a space written by :meth:`save`."""
        import pickle

        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if not isinstance(payload, dict) or payload.get("format") != 1:
            raise FeatureSpaceError(f"unrecognized feature-space file: {path!r}")
        space = payload["space"]
        if not isinstance(space, cls):
            raise FeatureSpaceError(f"file does not contain a FeatureSpace: {path!r}")
        return space

    def __repr__(self):
        return (
            f"<FeatureSpace θ={self.theta}: {len(self._feature_sets)} pairs, "
            f"{len(self._index)} feature keys>"
        )


def merge_spaces(spaces: Iterable[FeatureSpace]) -> FeatureSpace:
    """Union of partition spaces (used to report whole-dataset metrics)."""
    spaces = list(spaces)
    if not spaces:
        raise FeatureSpaceError("cannot merge zero spaces")
    theta = spaces[0].theta
    merged = FeatureSpace(theta)
    for space in spaces:
        if space.theta != theta:
            raise FeatureSpaceError("cannot merge spaces with different theta")
        for link, feature_set in space._feature_sets.items():
            if link not in merged._feature_sets:
                merged._feature_sets[link] = feature_set
                for key, score in feature_set.items():
                    merged._index.setdefault(key, []).append((score, link))
    merged._total_pairs_considered = sum(s.total_pairs_considered for s in spaces)
    merged.freeze()
    return merged


# --------------------------------------------------------------------- #
# Space deltas on the wire
# --------------------------------------------------------------------- #


def encode_space_delta(space: FeatureSpace) -> bytes:
    """Dictionary-encode a partition's scored space for the trip home.

    A pool worker returns its partition result in the same flat-array wire
    format partitions arrive in (see :mod:`repro.similarity.prepared`):
    every link endpoint and predicate ships as a dictionary ID, every score
    as one f64 — scores survive the round trip bit-identically, which the
    parity tests rely on. Works on unfrozen spaces; the parent merges the
    decoded deltas and freezes once.
    """
    writer = WireWriter()
    writer.floats.append(space.theta)
    ints = writer.ints
    total = space._total_pairs_considered
    ints.append(total >> 32)
    ints.append(total & 0xFFFFFFFF)
    ints.append(len(space._feature_sets))
    for link, feature_set in space._feature_sets.items():
        ints.append(writer.term_id(link.left))
        ints.append(writer.term_id(link.right))
        ints.append(len(feature_set))
        for (p1, p2), score in feature_set.items():
            ints.append(writer.term_id(p1))
            ints.append(writer.term_id(p2))
            writer.floats.append(score)
    return writer.to_bytes()


def decode_space_delta(blob: bytes) -> FeatureSpace:
    """Inverse of :func:`encode_space_delta`; the space comes back unfrozen
    (feed it to :func:`merge_spaces`, which freezes the union)."""
    reader = WireReader(blob)
    theta = reader.read_float()
    space = FeatureSpace(theta)
    space._total_pairs_considered = (reader.read_int() << 32) | reader.read_int()
    for _ in range(reader.read_int()):
        left = reader.term(reader.read_int())
        right = reader.term(reader.read_int())
        link = Link(left, right)
        features: dict[FeatureKey, float] = {}
        for _ in range(reader.read_int()):
            p1 = reader.term(reader.read_int())
            p2 = reader.term(reader.read_int())
            features[(p1, p2)] = reader.read_float()
        feature_set = FeatureSet(features)
        space._feature_sets[link] = feature_set
        for key, score in feature_set.items():
            space._index.setdefault(key, []).append((score, link))
    return space
