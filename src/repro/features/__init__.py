"""Feature sets, the θ-filtered link space, blocking, and partitioning."""

from repro.features.blocking import TokenBlocker, blocked_pairs, entity_tokens
from repro.features.feature_set import (
    DEFAULT_THETA,
    FeatureKey,
    FeatureSet,
    build_feature_set,
    build_feature_set_prepared,
    similarity_matrix,
    similarity_matrix_prepared,
)
from repro.features.partition import build_partitioned_spaces, equal_size_partition
from repro.features.space import FeatureSpace, merge_spaces

__all__ = [
    "DEFAULT_THETA",
    "FeatureKey",
    "FeatureSet",
    "FeatureSpace",
    "TokenBlocker",
    "blocked_pairs",
    "build_feature_set",
    "build_feature_set_prepared",
    "build_partitioned_spaces",
    "entity_tokens",
    "equal_size_partition",
    "merge_spaces",
    "similarity_matrix",
    "similarity_matrix_prepared",
]
