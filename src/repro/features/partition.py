"""Equal-size partitioning of the link search space (Section 6.2).

The larger dataset is split round-robin into *n* partitions; feature sets
are generated between each partition and the whole smaller dataset. The
partitions are fully independent, so ALEX instances can explore them in
parallel without communication.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import FeatureSpaceError
from repro.features.feature_set import DEFAULT_THETA
from repro.features.space import FeatureSpace
from repro.rdf.entity import Entity, entities_of
from repro.rdf.graph import Graph


def equal_size_partition(entities: Sequence[Entity], n_partitions: int) -> list[list[Entity]]:
    """Round-robin split: the i-th entity goes to partition ``i mod n``.

    Entities are first sorted by URI so the split is deterministic
    regardless of input order.
    """
    if n_partitions < 1:
        raise FeatureSpaceError(f"n_partitions must be >= 1, got {n_partitions}")
    ordered = sorted(entities, key=lambda e: str(e.uri))
    partitions: list[list[Entity]] = [[] for _ in range(n_partitions)]
    for index, entity in enumerate(ordered):
        partitions[index % n_partitions].append(entity)
    return partitions


def build_partitioned_spaces(
    left: Graph | Iterable[Entity],
    right: Graph | Iterable[Entity],
    n_partitions: int,
    theta: float = DEFAULT_THETA,
    use_blocking: bool = True,
    workers: int | None = 1,
) -> list[FeatureSpace]:
    """Partition the larger side and build one FeatureSpace per partition.

    Follows the paper: "we partition the larger data set and generate
    feature sets between each partition and all entities in the smaller
    data set". The returned spaces keep the Link orientation (left dataset
    first) regardless of which side was larger. ``workers > 1`` builds each
    partition's space on the persistent worker pool (the spaces themselves
    are identical either way — parity is independent of the worker count).
    """
    left_entities = list(entities_of(left) if isinstance(left, Graph) else left)
    right_entities = list(entities_of(right) if isinstance(right, Graph) else right)

    if len(left_entities) >= len(right_entities):
        partitions = equal_size_partition(left_entities, n_partitions)
        return [
            FeatureSpace.build(part, right_entities, theta, use_blocking, workers=workers)
            for part in partitions
            if part
        ]
    partitions = equal_size_partition(right_entities, n_partitions)
    return [
        FeatureSpace.build(left_entities, part, theta, use_blocking, workers=workers)
        for part in partitions
        if part
    ]
