"""Token blocking: cheap candidate-pair generation.

Computing a feature set for every pair of entities is O(|D1|·|D2|) similarity
matrices — exactly the cost Section 6.1 filters against. Before filtering by
θ we avoid even *touching* most pairs with standard token blocking: entities
whose literal values share no alphanumeric token are extremely unlikely to
produce any feature ≥ θ on string attributes, so only token-sharing pairs are
scored. Numeric-only matches can be missed by pure token blocking, so tokens
of numeric lexical forms are included too (a shared year links the block).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef
from repro.similarity.strings import tokens

#: Tokens appearing in more than this fraction of one side's entities are
#: considered stop-tokens and ignored (they would pair everything with
#: everything, defeating the block).
DEFAULT_STOP_FRACTION = 0.25


def entity_tokens(entity: Entity) -> set[str]:
    """All blocking tokens of an entity: tokens of literal lexical forms
    plus tokens of its URI local name."""
    out: set[str] = set(tokens(entity.uri.local_name if isinstance(entity.uri, URIRef) else ""))
    for _, obj in entity.pairs():
        if isinstance(obj, Literal):
            out.update(tokens(obj.lexical))
        elif isinstance(obj, URIRef):
            out.update(tokens(obj.local_name))
    return out


class TokenBlocker:
    """Inverted token index over one dataset's entities.

    ``token_map`` is a shared per-build memo (entity → token set): the
    blocker fills it for its own side at index time and reuses it in
    :meth:`candidates`, so no entity is tokenized more than once per build
    even when the same map is threaded through several components.
    """

    def __init__(
        self,
        entities: Iterable[Entity],
        stop_fraction: float = DEFAULT_STOP_FRACTION,
        token_map: dict[Entity, set[str]] | None = None,
    ):
        self.entities = list(entities)
        self._token_map: dict[Entity, set[str]] = token_map if token_map is not None else {}
        index: dict[str, list[int]] = defaultdict(list)
        for position, entity in enumerate(self.entities):
            for token in self._tokens_of(entity):
                index[token].append(position)
        cutoff = max(2, int(stop_fraction * max(1, len(self.entities))))
        self._index = {
            token: positions for token, positions in index.items() if len(positions) <= cutoff
        }

    def _tokens_of(self, entity: Entity) -> set[str]:
        cached = self._token_map.get(entity)
        if cached is None:
            cached = entity_tokens(entity)
            self._token_map[entity] = cached
        return cached

    def candidates(self, entity: Entity) -> list[Entity]:
        """Entities sharing at least one non-stop token with ``entity``."""
        seen: set[int] = set()
        for token in self._tokens_of(entity):
            for position in self._index.get(token, ()):
                seen.add(position)
        return [self.entities[position] for position in sorted(seen)]

    def __len__(self) -> int:
        return len(self.entities)


def blocked_pairs(
    left_entities: Iterable[Entity],
    right_entities: Iterable[Entity],
    stop_fraction: float = DEFAULT_STOP_FRACTION,
    token_map: dict[Entity, set[str]] | None = None,
) -> Iterator[tuple[Entity, Entity]]:
    """Yield candidate (left, right) pairs that share a blocking token."""
    blocker = TokenBlocker(right_entities, stop_fraction, token_map=token_map)
    for left in left_entities:
        for right in blocker.candidates(left):
            yield left, right
