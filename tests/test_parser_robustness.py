"""Robustness fuzzing: malformed input must fail with *library* errors.

A production parser never leaks bare ``IndexError``/``AttributeError`` to
callers; every malformed query or document must raise the documented
:class:`~repro.errors.ParseError`/:class:`~repro.errors.QuerySyntaxError`
(or parse successfully). Hypothesis supplies the garbage.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError, QueryError
from repro.rdf import ntriples, turtle
from repro.sparql.parser import parse_query

# Garbage biased toward the languages' own alphabets so fragments get deep
# enough to stress interesting parser states.
sparql_tokens = st.sampled_from(
    ["SELECT", "WHERE", "FILTER", "{", "}", "(", ")", "?x", "?y", "<http://x/p>",
     '"text"', "|", "/", "^", "*", "+", ".", ";", ",", "a", "UNION", "OPTIONAL",
     "ORDER", "BY", "LIMIT", "5", "&&", "=", "PREFIX", "ex:", "BIND", "AS",
     "VALUES", "UNDEF", "EXISTS", "NOT", "COUNT", "GROUP"]
)
sparql_garbage = st.lists(sparql_tokens, max_size=25).map(" ".join)

turtle_tokens = st.sampled_from(
    ["@prefix", "ex:", "<http://x/a>", '"text"', "a", ".", ";", ",", "[", "]",
     "(", ")", "1984", "2.5", "true", "_:b1", "@en", "^^", "ex:p"]
)
turtle_garbage = st.lists(turtle_tokens, max_size=25).map(" ".join)

line_garbage = st.text(max_size=80)


class TestSparqlParserRobustness:
    @given(sparql_garbage)
    @settings(max_examples=300, deadline=None)
    def test_token_soup_never_crashes(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass  # the documented failure mode

    @given(line_garbage)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass


class TestTurtleParserRobustness:
    @given(turtle_garbage)
    @settings(max_examples=300, deadline=None)
    def test_token_soup_never_crashes(self, text):
        try:
            list(turtle.parse(text))
        except ParseError:
            pass

    @given(line_garbage)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            list(turtle.parse(text))
        except ParseError:
            pass


class TestNTriplesParserRobustness:
    @given(line_garbage)
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_lines_never_crash(self, text):
        try:
            ntriples.parse_line(text)
        except ParseError:
            pass
