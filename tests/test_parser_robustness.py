"""Robustness fuzzing: malformed input must fail with *library* errors.

A production parser never leaks bare ``IndexError``/``AttributeError`` to
callers; every malformed query or document must raise the documented
:class:`~repro.errors.ParseError`/:class:`~repro.errors.QuerySyntaxError`
(or parse successfully). Hypothesis supplies the garbage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError, QueryError, QuerySyntaxError
from repro.rdf import ntriples, turtle
from repro.sparql.analysis import analyze_query
from repro.sparql.ast import get_position
from repro.sparql.parser import parse_query

# Garbage biased toward the languages' own alphabets so fragments get deep
# enough to stress interesting parser states.
sparql_tokens = st.sampled_from(
    ["SELECT", "WHERE", "FILTER", "{", "}", "(", ")", "?x", "?y", "<http://x/p>",
     '"text"', "|", "/", "^", "*", "+", ".", ";", ",", "a", "UNION", "OPTIONAL",
     "ORDER", "BY", "LIMIT", "5", "&&", "=", "PREFIX", "ex:", "BIND", "AS",
     "VALUES", "UNDEF", "EXISTS", "NOT", "COUNT", "GROUP"]
)
sparql_garbage = st.lists(sparql_tokens, max_size=25).map(" ".join)

turtle_tokens = st.sampled_from(
    ["@prefix", "ex:", "<http://x/a>", '"text"', "a", ".", ";", ",", "[", "]",
     "(", ")", "1984", "2.5", "true", "_:b1", "@en", "^^", "ex:p"]
)
turtle_garbage = st.lists(turtle_tokens, max_size=25).map(" ".join)

line_garbage = st.text(max_size=80)


class TestSparqlParserRobustness:
    @given(sparql_garbage)
    @settings(max_examples=300, deadline=None)
    def test_token_soup_never_crashes(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass  # the documented failure mode

    @given(line_garbage)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass


class TestSparqlErrorPositions:
    """Syntax errors carry the line/column where the parser gave up."""

    def test_error_on_first_line_has_column(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query("SELECT ?s WHERE { ?s ?p }")
        assert excinfo.value.line == 1
        assert excinfo.value.column is not None

    def test_error_line_tracks_newlines(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query("SELECT ?s\nWHERE {\n  ?s ?p\n}")
        assert excinfo.value.line >= 3

    def test_unterminated_group_reports_position(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query("SELECT * WHERE { ?s ?p ?o ")
        assert excinfo.value.line is not None

    def test_bad_token_column_is_one_based(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query("GARBAGE")
        assert excinfo.value.column == 1

    def test_ast_nodes_carry_positions(self):
        parsed = parse_query(
            "SELECT ?s WHERE {\n  ?s <http://x/p> ?o .\n  FILTER(?o > 1)\n}"
        )
        var_line, var_column = get_position(parsed.variables[0])
        assert (var_line, var_column) == (1, 8)
        pattern = parsed.where.children[0].patterns[0]
        assert get_position(pattern)[0] == 2
        filter_pattern = parsed.where.children[1]
        assert get_position(filter_pattern)[0] == 3


class TestAnalyzerRobustness:
    """The analyzer must accept anything the parser accepts."""

    @given(sparql_garbage)
    @settings(max_examples=200, deadline=None)
    def test_analyzer_never_crashes_on_parseable_garbage(self, text):
        try:
            parsed = parse_query(text)
        except QueryError:
            return
        diagnostics = analyze_query(parsed)
        for diagnostic in diagnostics:
            assert diagnostic.code and diagnostic.severity in ("error", "warning", "info")

    def test_duplicate_projected_variables(self):
        diagnostics = analyze_query("SELECT ?s ?s ?s WHERE { ?s ?p ?o }")
        assert sum(d.code == "ALEX-W106" for d in diagnostics) == 2

    def test_filter_on_optional_only_variable(self):
        diagnostics = analyze_query(
            "SELECT * WHERE { ?s <http://x/p> ?o "
            "OPTIONAL { ?s <http://x/q> ?v } FILTER(?v > 1) }"
        )
        assert any(d.code == "ALEX-W108" for d in diagnostics)

    def test_empty_values_clause(self):
        diagnostics = analyze_query("SELECT * WHERE { ?s ?p ?o VALUES ?v { } }")
        assert any(d.code == "ALEX-W107" for d in diagnostics)

    def test_nested_union_scoping(self):
        # ?x is bound in every branch of the outer UNION (including both
        # branches of the nested inner UNION), so projecting it is fine.
        diagnostics = analyze_query(
            "SELECT ?x WHERE { { ?x <http://x/a> ?y } UNION "
            "{ { ?x <http://x/b> ?y } UNION { ?x <http://x/c> ?y } } }"
        )
        assert not any(d.code == "ALEX-E001" for d in diagnostics)

    def test_nested_union_partial_binding_flagged(self):
        # ?y is missing from one inner branch, so it is not certain.
        diagnostics = analyze_query(
            "SELECT * WHERE { { ?x <http://x/a> ?y } UNION "
            "{ { ?x <http://x/b> ?y } UNION { ?x <http://x/c> ?x } } "
            "FILTER(!BOUND(?y)) }"
        )
        assert not any(d.code == "ALEX-W103" for d in diagnostics)


class TestTurtleParserRobustness:
    @given(turtle_garbage)
    @settings(max_examples=300, deadline=None)
    def test_token_soup_never_crashes(self, text):
        try:
            list(turtle.parse(text))
        except ParseError:
            pass

    @given(line_garbage)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            list(turtle.parse(text))
        except ParseError:
            pass


class TestNTriplesParserRobustness:
    @given(line_garbage)
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_lines_never_crash(self, text):
        try:
            ntriples.parse_line(text)
        except ParseError:
            pass
