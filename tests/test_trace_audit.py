"""The RL decision audit trail: engine, session, federation, and parity tests.

The acceptance bar for the tracing PR: from a run's trace records alone,
reconstruct *why* a link exists (which feature was chosen, in which
explore/exploit mode, and what reward followed) — for links that survived
and for links that a rollback later forgot — and prove that installing the
tracer changes nothing about a seeded run's results.
"""

import random

import pytest

from repro import obs
from repro.core import AlexConfig, AlexEngine
from repro.core.policy import EpsilonGreedyPolicy
from repro.errors import FederationError
from repro.features import FeatureSpace
from repro.federation import Endpoint, FederatedEngine
from repro.feedback import FeedbackSession, GroundTruthOracle
from repro.links import Link, LinkSet
from repro.obs import trace
from repro.rdf import turtle
from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")


def left_entity(index, name):
    return Entity(URIRef(f"http://a/res/e{index}"), {LEFT_NAME: (Literal(name),)})


def right_entity(index, name):
    return Entity(URIRef(f"http://b/res/e{index}"), {RIGHT_NAME: (Literal(name),)})


def link(i, j):
    return Link(URIRef(f"http://a/res/e{i}"), URIRef(f"http://b/res/e{j}"))


@pytest.fixture()
def space():
    space = FeatureSpace(theta=0.3)
    names = ["Alpha Jones", "Bravo Jones", "Carol Jones", "Delta Jones", "Echo Jones"]
    lefts = [left_entity(i, name) for i, name in enumerate(names)]
    rights = [right_entity(i, name) for i, name in enumerate(names)]
    for left in lefts:
        for right in rights:
            space.add_pair(left, right)
    space.freeze()
    return space


def rollback_config(**overrides):
    settings = dict(
        episode_size=50, rollback_min_negatives=2, rollback_negative_fraction=0.6, seed=1
    )
    settings.update(overrides)
    return AlexConfig(**settings)


def events_named(tracer, name):
    return [r for r in tracer.records() if r["name"] == name]


class TestDiscoveryAuditTrail:
    def test_discovered_link_chain_is_reconstructible(self, space):
        """feature.select → link.discover → link.approve, all correlated."""
        with obs.use_registry(obs.Registry("t")):
            tracer = trace.install(seed=0)
            engine = AlexEngine(space, LinkSet([link(0, 0)]), rollback_config())
            discovered = engine.process_feedback(link(0, 0), positive=True)
            confirmed = discovered[0]
            engine.process_feedback(confirmed, positive=True)

        assert discovered
        selects = events_named(tracer, "alex.feature.select")
        assert selects, "every exploration starts with a feature.select event"
        select = selects[0]["attrs"]
        assert select["state"] == str(link(0, 0))
        assert select["mode"] in ("bootstrap", "uniform", "exploit", "explore")
        # the Q estimates that justified the choice ride along
        assert select["feature"] in select["q"]

        discovers = events_named(tracer, "alex.link.discover")
        by_link = {e["attrs"]["link"]: e["attrs"] for e in discovers}
        for found in discovered:
            attrs = by_link[str(found)]
            assert attrs["state"] == select["state"]
            assert attrs["feature"] == select["feature"]
            assert attrs["mode"] == select["mode"]

        approves = events_named(tracer, "alex.link.approve")
        rewarded = {e["attrs"]["link"]: e["attrs"]["reward"] for e in approves}
        assert rewarded[str(confirmed)] == engine.config.positive_reward

    def test_reject_and_blacklist_events(self, space):
        with obs.use_registry(obs.Registry("t")):
            tracer = trace.install(seed=0)
            engine = AlexEngine(
                space, LinkSet([link(0, 0)]), rollback_config(use_rollback=False)
            )
            discovered = engine.process_feedback(link(0, 0), positive=True)
            victim = discovered[0]
            engine.process_feedback(victim, positive=False)

        (reject,) = events_named(tracer, "alex.link.reject")
        assert reject["attrs"]["link"] == str(victim)
        assert reject["attrs"]["reward"] == engine.config.negative_reward
        assert reject["attrs"]["removed"] is True
        (blacklisted,) = events_named(tracer, "alex.blacklist.insert")
        assert blacklisted["attrs"]["link"] == str(victim)
        assert victim in engine.blacklist


class TestRollbackAuditTrail:
    def test_rolled_back_link_chain_is_reconstructible(self, space):
        """A link forgotten by rollback still has its full decision chain:
        discover (feature + mode) and the rollback that took it away."""
        with obs.use_registry(obs.Registry("t")):
            tracer = trace.install(seed=0)
            engine = AlexEngine(space, LinkSet([link(0, 0)]), rollback_config())
            discovered = engine.process_feedback(link(0, 0), positive=True)
            engine.process_feedback(discovered[0], positive=False)
            engine.process_feedback(discovered[1], positive=False)

        rollbacks = events_named(tracer, "alex.rollback.apply")
        assert rollbacks, "two rejections past the threshold must trip a rollback"
        rollback = rollbacks[0]["attrs"]
        forgotten = set(rollback["links_forgotten"])
        survivors = {str(l) for l in discovered[2:]}
        assert survivors & forgotten

        discovers = {
            e["attrs"]["link"]: e["attrs"]
            for e in events_named(tracer, "alex.link.discover")
        }
        for name in survivors & forgotten:
            chain = discovers[name]
            # same generator the rollback names: state + feature line up
            assert chain["feature"] == rollback["feature"]
            assert chain["state"] == rollback["state"]
            assert chain["mode"] in ("bootstrap", "uniform", "exploit", "explore")
        # and the links really are gone
        for l in discovered[2:]:
            assert l not in engine.candidates
        assert rollback["negatives"] >= engine.config.rollback_min_negatives


class TestSessionSpans:
    def test_episode_span_wraps_engine_events(self, space):
        truth = LinkSet([link(i, i) for i in range(5)])
        with obs.use_registry(obs.Registry("t")):
            tracer = trace.install(seed=0)
            engine = AlexEngine(space, LinkSet([link(0, 0)]), rollback_config())
            session = FeedbackSession(engine, GroundTruthOracle(truth), seed=3)
            session.run(episode_size=5, max_episodes=2)

        spans = [r for r in tracer.records() if r["kind"] == "span"]
        episode_spans = [s for s in spans if s["name"] == "alex.episode.run"]
        assert len(episode_spans) == 2
        assert [s["attrs"]["index"] for s in episode_spans] == [1, 2]
        trace_ids = {s["trace"] for s in episode_spans}
        ends = events_named(tracer, "alex.episode.end")
        assert len(ends) == 2
        # engine events land inside the episode's trace, not trace-less
        for record in tracer.records():
            if record["name"].startswith("alex."):
                assert record["trace"] in trace_ids

    def test_engine_without_session_traces_traceless(self, space):
        with obs.use_registry(obs.Registry("t")):
            tracer = trace.install(seed=0)
            engine = AlexEngine(space, LinkSet([link(0, 0)]), rollback_config())
            engine.process_feedback(link(0, 0), positive=True)
        assert all(r["trace"] is None for r in tracer.records())


class TestTracingChangesNothing:
    def run_engine(self, space, tracing):
        with obs.use_registry(obs.Registry("t")) as registry:
            if tracing:
                trace.install(seed=0)
            truth = LinkSet([link(i, i) for i in range(5)])
            engine = AlexEngine(space, LinkSet([link(0, 0)]), rollback_config())
            session = FeedbackSession(engine, GroundTruthOracle(truth), seed=3)
            session.run(episode_size=5, max_episodes=3)
            return engine.candidates.snapshot(), registry.snapshot()

    def test_seeded_run_parity_and_no_new_obs_names(self, space):
        bare_candidates, bare_snapshot = self.run_engine(space, tracing=False)
        traced_candidates, traced_snapshot = self.run_engine(space, tracing=True)
        assert bare_candidates == traced_candidates
        assert "events" not in bare_snapshot
        assert "events" in traced_snapshot

        def names(snapshot):
            return {
                entry["name"]
                for section in ("counters", "gauges", "histograms")
                for entry in snapshot[section]
            } | {entry["path"] for entry in snapshot["spans"]}

        # tracing introduces no aggregate instruments of its own
        assert names(bare_snapshot) == names(traced_snapshot)

    def test_policy_mode_variant_consumes_identical_rng(self):
        policy = EpsilonGreedyPolicy(0.1)
        policy.improve(link(0, 0), (LEFT_NAME, RIGHT_NAME))
        available = [(LEFT_NAME, RIGHT_NAME), (RIGHT_NAME, LEFT_NAME)]
        picks = [
            policy.choose(link(0, 0), available, random.Random(7)) for _ in range(1)
        ] + [policy.choose(link(i, i), available, random.Random(7)) for i in range(3)]
        modes = [
            policy.choose_with_mode(link(0, 0), available, random.Random(7))
        ] + [policy.choose_with_mode(link(i, i), available, random.Random(7)) for i in range(3)]
        assert picks == [action for action, _ in modes]
        assert all(
            mode in ("uniform", "exploit", "explore") for _, mode in modes
        )


class TestWorkerPropagation:
    def test_partition_events_ride_home_in_snapshots(self, space):
        from repro.core.parallel_mp import run_partitions_parallel

        truth = LinkSet([link(i, i) for i in range(5)])
        with obs.use_registry(obs.Registry("parent")):
            tracer = trace.install(seed=0)
            merged, outcomes = run_partitions_parallel(
                [space],
                LinkSet([link(0, 0)]),
                truth,
                rollback_config(),
                episode_size=5,
                max_episodes=2,
                max_workers=1,
            )
        assert link(0, 0) in merged
        # the worker's audit events were absorbed into the parent's tracer
        names = {r["name"] for r in tracer.records()}
        assert "alex.episode.end" in names
        assert any(r["name"] == "alex.episode.run" for r in tracer.records())
        (outcome,) = outcomes
        assert "events" in outcome.obs_snapshot

    def test_no_parent_tracer_means_no_worker_events(self, space):
        from repro.core.parallel_mp import run_partitions_parallel

        truth = LinkSet([link(i, i) for i in range(5)])
        with obs.use_registry(obs.Registry("parent")) as registry:
            _, outcomes = run_partitions_parallel(
                [space],
                LinkSet([link(0, 0)]),
                truth,
                rollback_config(),
                episode_size=5,
                max_episodes=2,
                max_workers=1,
            )
            assert registry.tracer is None
        (outcome,) = outcomes
        assert "events" not in outcome.obs_snapshot


DB = "http://db/"
NYT = "http://nyt/"
FED_QUERY = """
    PREFIX db: <http://db/>
    PREFIX nyt: <http://nyt/>
    SELECT ?a WHERE { ?p db:award db:mvp2013 . ?p nyt:topicOf ?a . }
"""


@pytest.fixture()
def federation():
    dbpedia = turtle.load(
        """
        @prefix db: <http://db/> .
        db:lebron db:award db:mvp2013 ; db:name "LeBron James" .
        db:durant db:award db:mvp2014 ; db:name "Kevin Durant" .
        """,
        name="dbpedia",
    )
    nytimes = turtle.load(
        """
        @prefix nyt: <http://nyt/> .
        nyt:lebron nyt:topicOf nyt:a1 , nyt:a2 .
        nyt:durant nyt:topicOf nyt:a3 .
        """,
        name="nytimes",
    )
    links = LinkSet(
        [
            Link(URIRef(DB + "lebron"), URIRef(NYT + "lebron")),
            Link(URIRef(DB + "durant"), URIRef(NYT + "durant")),
        ]
    )
    return FederatedEngine(
        [Endpoint(dbpedia, name="dbpedia"), Endpoint(nytimes, name="nytimes")], links
    )


class TestFederationTracing:
    def test_result_and_rows_carry_trace_id(self, federation):
        with obs.use_registry(obs.Registry("t")):
            tracer = trace.install(seed=0)
            result = federation.select(FED_QUERY)
        spans = [r for r in tracer.records() if r["kind"] == "span"]
        (execute,) = [s for s in spans if s["name"] == "federation.query.execute"]
        assert result.trace_id == execute["trace"]
        assert len(result) == 2
        assert all(row.trace_id == execute["trace"] for row in result.rows)

    def test_endpoint_and_source_selection_events_correlated(self, federation):
        with obs.use_registry(obs.Registry("t")):
            tracer = trace.install(seed=0)
            result = federation.select(FED_QUERY)
        records = tracer.records()
        requests = [r for r in records if r["name"] == "federation.endpoint.request"]
        assert {r["attrs"]["endpoint"] for r in requests} == {"dbpedia", "nytimes"}
        selections = [r for r in records if r["name"] == "federation.source.select"]
        assert len(selections) == 2  # one rationale per pattern
        for selection in selections:
            assert selection["attrs"]["rationale"]
            assert selection["attrs"]["selected"]
        # everything shares the executor span's trace
        assert {r["trace"] for r in records} == {result.trace_id}

    def test_untraced_run_leaves_trace_id_none(self, federation):
        with obs.use_registry(obs.Registry("t")):
            result = federation.select(FED_QUERY)
        assert result.trace_id is None
        assert all(row.trace_id is None for row in result.rows)

    def test_federation_error_captures_active_trace_id(self):
        with obs.use_registry(obs.Registry("t")):
            tracer = trace.install(seed=0)
            with tracer.span("federation.query.execute") as span:
                error = FederationError("endpoint fell over")
            assert error.trace_id == span.trace_id
            outside = FederationError("no trace active")
            assert outside.trace_id is None
