"""Tests for TF-IDF similarity, soft token matching, and crowd feedback."""

import pytest

from repro.errors import ConfigError, SimilarityError
from repro.feedback import GroundTruthOracle, MajorityVoteOracle
from repro.links import Link, LinkSet
from repro.rdf.terms import URIRef
from repro.similarity import TfIdfModel, soft_token_similarity


class TestTfIdf:
    @pytest.fixture()
    def model(self):
        corpus = [
            "the quick brown fox",
            "the lazy dog",
            "the fox jumps over the dog",
            "basketball player wins award",
        ]
        return TfIdfModel(corpus)

    def test_identical_texts_score_one(self, model):
        assert model.similarity("quick brown fox", "quick brown fox") == pytest.approx(1.0)

    def test_rare_terms_dominate(self, model):
        # 'basketball' is rarer than 'the': sharing it means more
        rare = model.similarity("basketball game", "basketball match")
        common = model.similarity("the game", "the match")
        assert rare > common

    def test_disjoint_texts_score_zero(self, model):
        assert model.similarity("quick fox", "lazy dog") == 0.0

    def test_empty_texts(self, model):
        assert model.similarity("", "") == 1.0
        assert model.similarity("fox", "") == 0.0

    def test_range(self, model):
        for a in ("the quick fox", "dog", "award player"):
            for b in ("lazy dog the", "fox jumps", ""):
                assert 0.0 <= model.similarity(a, b) <= 1.0

    def test_unseen_tokens_get_max_idf(self, model):
        assert model.idf("zzzunseen") >= model.idf("the")

    def test_empty_corpus_rejected(self):
        with pytest.raises(SimilarityError):
            TfIdfModel([])

    def test_document_count(self, model):
        assert model.document_count == 4


class TestSoftTokenSimilarity:
    def test_exact(self):
        assert soft_token_similarity("LeBron James", "lebron james") == pytest.approx(1.0)

    def test_typos_inside_tokens_still_match(self):
        score = soft_token_similarity("Lebron Jmaes", "LeBron James")
        assert score > 0.9

    def test_beats_exact_jaccard_on_typos(self):
        from repro.similarity import token_jaccard_similarity

        a, b = "Lebron Jmaes", "LeBron James"
        assert soft_token_similarity(a, b) > token_jaccard_similarity(a, b)

    def test_unrelated_low(self):
        assert soft_token_similarity("Miami Heat", "Kevin Durant") < 0.3

    def test_empty(self):
        assert soft_token_similarity("", "") == 1.0
        assert soft_token_similarity("x", "") == 0.0

    def test_symmetric_enough(self):
        a, b = "alpha beta gamma", "beta gamma delta"
        assert abs(soft_token_similarity(a, b) - soft_token_similarity(b, a)) < 1e-9


def _link(i: int) -> Link:
    return Link(URIRef(f"http://a/e{i}"), URIRef(f"http://b/e{i}"))


class TestMajorityVoteOracle:
    @pytest.fixture()
    def truth(self):
        return GroundTruthOracle(LinkSet([_link(0)]))

    def test_panel_beats_individual(self, truth):
        panel = MajorityVoteOracle(truth, panel_size=5, error_rates=0.2, seed=3)
        assert panel.effective_error_rate() < 0.2

    def test_bigger_panel_is_better(self, truth):
        small = MajorityVoteOracle(truth, panel_size=3, error_rates=0.25, seed=3)
        large = MajorityVoteOracle(truth, panel_size=9, error_rates=0.25, seed=3)
        assert large.effective_error_rate() < small.effective_error_rate()

    def test_zero_error_panel_is_perfect(self, truth):
        panel = MajorityVoteOracle(truth, panel_size=3, error_rates=0.0)
        assert panel.judge(_link(0)) is True
        assert panel.judge(_link(1)) is False

    def test_votes_counted(self, truth):
        panel = MajorityVoteOracle(truth, panel_size=3, error_rates=0.1)
        panel.judge(_link(0))
        assert panel.votes_cast == 3

    def test_heterogeneous_rates(self, truth):
        panel = MajorityVoteOracle(truth, panel_size=3, error_rates=[0.0, 0.3, 0.4], seed=1)
        assert panel.effective_error_rate() < 0.3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"panel_size": 2},
            {"panel_size": 0},
            {"panel_size": 3, "error_rates": 0.6},
            {"panel_size": 3, "error_rates": [0.1, 0.1]},
        ],
    )
    def test_invalid_configs(self, truth, kwargs):
        with pytest.raises(ConfigError):
            MajorityVoteOracle(truth, **kwargs)
