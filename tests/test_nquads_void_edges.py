"""Edge-case tests for ``repro.rdf.nquads`` and ``repro.rdf.void``:
malformed graph labels, degenerate inputs, and datatyped-literal
round-trips."""

import pytest

from repro.errors import ParseError
from repro.links import Link, LinkSet
from repro.rdf import nquads
from repro.rdf.dataset import Dataset, Quad
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.rdf.triples import Triple
from repro.rdf.void import (
    DCTERMS,
    VOID,
    export_with_void,
    void_description,
    void_linkset,
)

XSD = "http://www.w3.org/2001/XMLSchema#"


class TestNQuadsBadGraphLabels:
    def test_literal_graph_label_rejected(self):
        with pytest.raises(ParseError):
            nquads.parse_line('<http://x/s> <http://x/p> <http://x/o> "graph" .')

    def test_bnode_graph_label_rejected(self):
        with pytest.raises(ParseError):
            nquads.parse_line("<http://x/s> <http://x/p> <http://x/o> _:g .")

    def test_unterminated_graph_iri(self):
        with pytest.raises(ParseError, match="unterminated"):
            nquads.parse_line("<http://x/s> <http://x/p> <http://x/o> <http://x/g .")

    def test_missing_final_dot(self):
        with pytest.raises(ParseError):
            nquads.parse_line("<http://x/s> <http://x/p> <http://x/o> <http://x/g>")

    def test_trailing_garbage_after_dot(self):
        with pytest.raises(ParseError, match="trailing"):
            nquads.parse_line("<http://x/s> <http://x/p> <http://x/o> <http://x/g> . junk")

    def test_parse_error_carries_line_number(self):
        text = "<http://x/s> <http://x/p> <http://x/o> .\nnot a quad\n"
        with pytest.raises(ParseError) as excinfo:
            list(nquads.parse(text))
        assert excinfo.value.line == 2


class TestNQuadsDegenerateInput:
    def test_empty_input(self):
        dataset = nquads.load("")
        assert len(dataset) == 0
        assert dataset.graph_names() == []

    def test_comment_only_input(self):
        dataset = nquads.load("# just a comment\n\n   \n# another\n")
        assert len(dataset) == 0

    def test_blank_and_comment_lines_between_quads(self):
        text = (
            "# header\n"
            "<http://x/s> <http://x/p> <http://x/o> <http://x/g> .\n"
            "\n"
            "# trailer\n"
        )
        dataset = nquads.load(text)
        assert len(dataset) == 1
        assert dataset.graph_names() == [URIRef("http://x/g")]

    def test_serialize_empty_is_empty_string(self):
        assert nquads.serialize([]) == ""

    def test_dump_file_empty_dataset(self, tmp_path):
        path = str(tmp_path / "empty.nq")
        assert nquads.dump_file(Dataset(), path) == 0
        assert open(path, encoding="utf-8").read() == ""


class TestNQuadsDatatypedRoundTrip:
    @pytest.mark.parametrize(
        "literal",
        [
            Literal("42", datatype=XSD + "integer"),
            Literal("3.25", datatype=XSD + "decimal"),
            Literal("true", datatype=XSD + "boolean"),
            Literal("2020-02-29", datatype=XSD + "date"),
            Literal('quote " and \\ backslash'),
            Literal("hello", language="en-US"),
        ],
    )
    def test_literal_survives_round_trip(self, literal):
        quad = Quad(URIRef("http://x/s"), URIRef("http://x/p"), literal, URIRef("http://x/g"))
        text = nquads.serialize([quad])
        (parsed,) = nquads.parse(text)
        assert parsed == quad
        assert parsed.object == literal

    def test_default_graph_quads_round_trip_without_label(self):
        quad = Quad(URIRef("http://x/s"), URIRef("http://x/p"), Literal("x"), None)
        text = nquads.serialize([quad])
        assert "<http://x/s> <http://x/p> \"x\" ." in text
        (parsed,) = nquads.parse(text)
        assert parsed.graph_name is None

    def test_dataset_file_round_trip_preserves_datatypes(self, tmp_path):
        dataset = Dataset(name="rt")
        typed = Literal("7", datatype=XSD + "integer")
        dataset.graph(URIRef("http://x/g")).add(
            Triple(URIRef("http://x/s"), URIRef("http://x/p"), typed)
        )
        path = str(tmp_path / "rt.nq")
        nquads.dump_file(dataset, path)
        loaded = nquads.load_file(path)
        triple = next(loaded.graph(URIRef("http://x/g")).triples())
        assert triple.object == typed


class TestVoidEdges:
    def test_empty_graph_description(self):
        description = void_description(Graph(), "http://x/dataset")
        subject = URIRef("http://x/dataset")
        assert next(description.triples(subject, VOID.triples, None)).object == Literal(
            "0", datatype=XSD + "integer"
        )
        # unnamed graph gets no dcterms:title
        assert next(description.triples(subject, DCTERMS.title, None), None) is None

    def test_named_graph_gets_title(self):
        graph = Graph(name="left")
        graph.add(Triple(URIRef("http://x/a"), URIRef("http://x/p"), Literal("v")))
        description = void_description(graph, "http://x/dataset")
        title = next(description.triples(None, DCTERMS.title, None)).object
        assert title == Literal("left")

    def test_empty_linkset_description(self):
        description = void_linkset(LinkSet(), "http://x/ls", "http://x/a", "http://x/b")
        count = next(description.triples(None, VOID.triples, None)).object
        assert count == Literal("0", datatype=XSD + "integer")

    def test_export_with_void_counts_match(self):
        links = LinkSet([Link(URIRef("http://a/1"), URIRef("http://b/1"))])
        combined = export_with_void(links, "http://x/base/", "http://a/", "http://b/")
        # one sameAs triple + five metadata triples
        assert len(list(combined.triples(None, None, None))) == 6
        linkset = URIRef("http://x/base/linkset")
        assert next(combined.triples(linkset, VOID.linkPredicate, None), None) is not None

    def test_void_description_lints_clean(self):
        """The validator accepts our own VoID output (dogfooding)."""
        from repro.rdf.validate import validate_graph

        graph = Graph(name="left")
        graph.add(Triple(URIRef("http://x/a"), URIRef("http://x/p"), Literal("v")))
        description = void_description(graph, "http://x/dataset")
        assert [d for d in validate_graph(description) if d.is_error] == []
