"""Test-suite path setup: make ``repro_analyzer`` (which lives under
``tools/`` so it can run without the repro package) importable from tests
run with ``PYTHONPATH=src``."""

import os
import sys

_TOOLS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)
