"""Tests for dataset bundles and feature-space persistence."""

import pytest

from repro.datasets import load_pair
from repro.datasets.bundle import load_bundle, save_bundle
from repro.errors import DatasetError, FeatureSpaceError
from repro.features import FeatureSpace


@pytest.fixture(scope="module")
def pair():
    return load_pair("opencyc_nba_nytimes")


class TestBundles:
    def test_round_trip_preserves_data(self, pair, tmp_path):
        directory = str(tmp_path / "bundle")
        save_bundle(pair, directory)
        loaded = load_bundle(directory)
        assert set(loaded.left.triples()) == set(pair.left.triples())
        assert set(loaded.right.triples()) == set(pair.right.triples())
        assert loaded.ground_truth == pair.ground_truth
        assert loaded.spec.name == pair.spec.name
        assert loaded.left_ontology.base == pair.left_ontology.base

    def test_loaded_bundle_runs_pipeline(self, pair, tmp_path):
        from repro.evaluation import evaluate_links
        from repro.paris import paris_links

        directory = str(tmp_path / "bundle")
        save_bundle(pair, directory)
        loaded = load_bundle(directory)
        links = paris_links(loaded.left, loaded.right, 0.8)
        quality = evaluate_links(links, loaded.ground_truth)
        assert quality.f_measure > 0.5

    def test_missing_metadata_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_bundle(str(tmp_path))

    def test_bad_format_rejected(self, pair, tmp_path):
        directory = str(tmp_path / "bundle")
        save_bundle(pair, directory)
        import json, os

        meta_path = os.path.join(directory, "pair.json")
        metadata = json.load(open(meta_path))
        metadata["format"] = 99
        json.dump(metadata, open(meta_path, "w"))
        with pytest.raises(DatasetError):
            load_bundle(directory)


class TestFeatureSpacePersistence:
    def test_save_load_round_trip(self, pair, tmp_path):
        space = FeatureSpace.build(pair.left, pair.right)
        path = str(tmp_path / "space.bin")
        space.save(path)
        loaded = FeatureSpace.load(path)
        assert set(loaded.links()) == set(space.links())
        assert loaded.theta == space.theta
        some_link = next(iter(space.links()))
        assert loaded.feature_set(some_link) == space.feature_set(some_link)

    def test_loaded_space_explorable(self, pair, tmp_path):
        space = FeatureSpace.build(pair.left, pair.right)
        path = str(tmp_path / "space.bin")
        space.save(path)
        loaded = FeatureSpace.load(path)
        key = loaded.feature_keys()[0]
        assert loaded.explore(key, 0.9, 0.1) == space.explore(key, 0.9, 0.1)

    def test_unfrozen_space_not_savable(self, tmp_path):
        with pytest.raises(FeatureSpaceError):
            FeatureSpace().save(str(tmp_path / "x.bin"))

    def test_garbage_file_rejected(self, tmp_path):
        import pickle

        path = str(tmp_path / "junk.bin")
        with open(path, "wb") as handle:
            pickle.dump({"nope": True}, handle)
        with pytest.raises(FeatureSpaceError):
            FeatureSpace.load(path)

    def test_loaded_space_drives_engine(self, pair, tmp_path):
        from repro.core import AlexConfig, AlexEngine
        from repro.feedback import FeedbackSession, GroundTruthOracle
        from repro.paris import paris_links

        space = FeatureSpace.build(pair.left, pair.right)
        path = str(tmp_path / "space.bin")
        space.save(path)
        loaded = FeatureSpace.load(path)
        initial = paris_links(pair.left, pair.right, 0.8)
        engine = AlexEngine(loaded, initial, AlexConfig(episode_size=10, seed=1))
        session = FeedbackSession(engine, GroundTruthOracle(pair.ground_truth), seed=1)
        session.run_episode(10)
        assert engine.episodes_completed == 1
