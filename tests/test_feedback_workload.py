"""Tests for the federated query workload generator and session."""

import pytest

from repro.core import AlexConfig, AlexEngine
from repro.datasets import PERSON_PROFILE, PairSpec, generate_pair
from repro.errors import ConfigError
from repro.evaluation import evaluate_links
from repro.features import FeatureSpace
from repro.federation import Endpoint, FederatedEngine
from repro.feedback import (
    GroundTruthOracle,
    QueryWorkloadGenerator,
    WorkloadSession,
)
from repro.paris import paris_links
from repro.sparql.parser import parse_query


@pytest.fixture(scope="module")
def pair():
    return generate_pair(
        PairSpec(
            name="workload",
            left_name="left",
            right_name="right",
            profiles=(PERSON_PROFILE,),
            n_shared=25,
            n_left_only=15,
            n_right_only=10,
            noise_left=0.05,
            noise_right=0.2,
            seed=31,
        )
    )


@pytest.fixture(scope="module")
def space(pair):
    return FeatureSpace.build(pair.left, pair.right)


class TestGenerator:
    def test_generated_queries_parse(self, pair):
        generator = QueryWorkloadGenerator(pair.left, pair.right, seed=1)
        for workload_query in generator.batch(20):
            parsed = parse_query(workload_query.text)
            assert parsed is not None

    def test_queries_span_both_datasets(self, pair):
        generator = QueryWorkloadGenerator(pair.left, pair.right, seed=1)
        workload_query = generator.generate()
        assert pair.left_ontology.base.split("//")[1].split(".")[0] or True
        # one pattern uses a left-side predicate, one a right-side predicate
        assert "left.example.org" in workload_query.text
        assert "right.example.org" in workload_query.text

    def test_focus_pins_entity(self, pair):
        generator = QueryWorkloadGenerator(pair.left, pair.right, seed=1)
        entity = next(iter(pair.left.entities()))
        workload_query = generator.generate(focus=entity)
        assert workload_query.seed_entity == entity
        assert str(entity) in workload_query.text

    def test_deterministic_by_seed(self, pair):
        a = QueryWorkloadGenerator(pair.left, pair.right, seed=7).batch(5)
        b = QueryWorkloadGenerator(pair.left, pair.right, seed=7).batch(5)
        assert [q.text for q in a] == [q.text for q in b]

    def test_empty_dataset_rejected(self, pair):
        from repro.rdf.graph import Graph

        with pytest.raises(ConfigError):
            QueryWorkloadGenerator(Graph(), pair.right)


class TestWorkloadSession:
    def make_session(self, pair, space, seed=2):
        initial = paris_links(pair.left, pair.right, score_threshold=0.8)
        alex = AlexEngine(space, initial, AlexConfig(episode_size=25, seed=seed,
                                                     rollback_min_negatives=3))
        federation = FederatedEngine(
            [Endpoint(pair.left), Endpoint(pair.right)], links=alex.candidates
        )
        generator = QueryWorkloadGenerator(pair.left, pair.right, seed=seed)
        return WorkloadSession(
            alex, federation, generator, GroundTruthOracle(pair.ground_truth), seed=seed
        )

    def test_queries_produce_feedback(self, pair, space):
        session = self.make_session(pair, space)
        produced = session.run_episode(feedback_budget=10)
        assert produced >= 10
        assert session.queries_answered > 0
        assert session.alex.episodes_completed == 1

    def test_workload_improves_links(self, pair, space):
        session = self.make_session(pair, space)
        initial_quality = evaluate_links(session.alex.candidates, pair.ground_truth)
        session.run(episodes=30, feedback_budget=25)
        final_quality = evaluate_links(session.alex.candidates, pair.ground_truth)
        assert final_quality.recall >= initial_quality.recall
        assert final_quality.f_measure > 0.9, (
            "query-driven feedback converges to high quality like link-driven"
        )

    def test_budget_validated(self, pair, space):
        session = self.make_session(pair, space)
        with pytest.raises(ConfigError):
            session.run_episode(feedback_budget=0)

    def test_query_cap_prevents_infinite_loop(self, pair, space):
        from repro.links import LinkSet

        # no candidate links -> no cross-dataset answers -> no feedback;
        # the max_queries cap must end the episode anyway
        alex = AlexEngine(space, LinkSet(), AlexConfig(episode_size=5, seed=1))
        federation = FederatedEngine(
            [Endpoint(pair.left), Endpoint(pair.right)], links=alex.candidates
        )
        generator = QueryWorkloadGenerator(pair.left, pair.right, seed=1)
        session = WorkloadSession(alex, federation, generator,
                                  GroundTruthOracle(pair.ground_truth))
        produced = session.run_episode(feedback_budget=5, max_queries=20)
        assert produced == 0
        assert session.queries_issued == 20
