"""Tests for the BGP join-order optimizer."""

import pytest

from repro.rdf import turtle
from repro.rdf.terms import Literal, URIRef
from repro.sparql import query
from repro.sparql.ast import BGP, TriplePattern, Var
from repro.sparql.optimizer import estimate_cardinality, reorder_bgp

EX = "http://x/"


@pytest.fixture()
def graph():
    lines = ["@prefix ex: <http://x/> ."]
    # 100 persons all typed, one with a rare award
    for i in range(100):
        lines.append(f'ex:p{i} a ex:Person ; ex:name "Person {i}" .')
    lines.append("ex:p7 ex:award ex:mvp .")
    return turtle.load("\n".join(lines))


def pattern(s, p, o) -> TriplePattern:
    def term(x):
        if isinstance(x, str) and x.startswith("?"):
            return Var(x[1:])
        if isinstance(x, str):
            return URIRef(EX + x)
        return x

    return term_pattern(term(s), term(p), term(o))


def term_pattern(s, p, o) -> TriplePattern:
    return TriplePattern(s, p, o)


class TestCardinalityEstimates:
    def test_fully_bound_is_one(self, graph):
        p = pattern("p7", "award", "mvp")
        assert estimate_cardinality(graph, p, set()) == 1.0

    def test_predicate_counts_used(self, graph):
        rare = pattern("?x", "award", "?y")
        common = pattern("?x", "name", "?y")
        assert estimate_cardinality(graph, rare, set()) < estimate_cardinality(
            graph, common, set()
        )

    def test_bound_vars_discount(self, graph):
        p = pattern("?x", "name", "?y")
        free = estimate_cardinality(graph, p, set())
        bound = estimate_cardinality(graph, p, {Var("x")})
        assert bound < free

    def test_subject_bound_count(self, graph):
        p = pattern("p7", "?p", "?o")
        assert estimate_cardinality(graph, p, set()) == 3.0  # type + name + award


class TestReordering:
    def test_selective_pattern_first(self, graph):
        bgp = BGP(
            [
                pattern("?x", "name", "?n"),
                pattern("?x", "award", "mvp"),
            ]
        )
        ordered = reorder_bgp(graph, bgp)
        assert "award" in str(ordered.patterns[0])

    def test_connectivity_preferred_over_selectivity(self, graph):
        # the disconnected award pattern about ?z must not interleave before
        # patterns connected to ?x once ?x is bound
        bgp = BGP(
            [
                pattern("?x", "award", "mvp"),
                pattern("?z", "name", "?m"),
                pattern("?x", "name", "?n"),
            ]
        )
        ordered = reorder_bgp(graph, bgp)
        assert ordered.patterns[0].variables() & ordered.patterns[1].variables()

    def test_single_pattern_unchanged(self, graph):
        bgp = BGP([pattern("?x", "name", "?n")])
        assert reorder_bgp(graph, bgp).patterns == bgp.patterns

    def test_same_results_any_order(self, graph):
        text_a = (
            "PREFIX ex: <http://x/> SELECT ?n WHERE "
            "{ ?x ex:name ?n . ?x ex:award ex:mvp . }"
        )
        text_b = (
            "PREFIX ex: <http://x/> SELECT ?n WHERE "
            "{ ?x ex:award ex:mvp . ?x ex:name ?n . }"
        )
        assert query(graph, text_a).as_tuples() == query(graph, text_b).as_tuples()
        assert query(graph, text_a).as_tuples() == [(Literal("Person 7"),)]
