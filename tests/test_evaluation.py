"""Unit tests for metrics, the quality tracker, and report rendering."""

import pytest

from repro.core.episode import EpisodeStats
from repro.evaluation import (
    QualityTracker,
    evaluate_links,
    format_table,
    new_correct_links,
    quality_curve_table,
    series_table,
)
from repro.links import Link, LinkSet
from repro.rdf.terms import URIRef


def link(i: int, j: int) -> Link:
    return Link(URIRef(f"http://a/e{i}"), URIRef(f"http://b/e{j}"))


class TestMetrics:
    def test_perfect(self):
        truth = LinkSet([link(0, 0), link(1, 1)])
        quality = evaluate_links(truth, truth)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f_measure == 1.0

    def test_partial(self):
        candidates = LinkSet([link(0, 0), link(0, 1)])
        truth = LinkSet([link(0, 0), link(1, 1)])
        quality = evaluate_links(candidates, truth)
        assert quality.precision == 0.5
        assert quality.recall == 0.5
        assert quality.f_measure == pytest.approx(0.5)

    def test_empty_candidates(self):
        quality = evaluate_links(LinkSet(), LinkSet([link(0, 0)]))
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f_measure == 0.0

    def test_empty_ground_truth(self):
        quality = evaluate_links(LinkSet([link(0, 0)]), LinkSet())
        assert quality.recall == 0.0

    def test_counts_exposed(self):
        quality = evaluate_links(LinkSet([link(0, 0), link(0, 1)]), LinkSet([link(0, 0)]))
        assert quality.true_positives == 1
        assert quality.candidate_count == 2
        assert quality.ground_truth_count == 1

    def test_accepts_plain_iterables(self):
        quality = evaluate_links([link(0, 0)], [link(0, 0), link(1, 1)])
        assert quality.recall == 0.5

    def test_new_correct_links(self):
        initial = [link(0, 0)]
        final = [link(0, 0), link(1, 1), link(2, 9)]
        truth = [link(0, 0), link(1, 1), link(2, 2)]
        assert new_correct_links(initial, final, truth) == {link(1, 1)}


class TestTracker:
    def test_record_initial_is_episode_zero(self):
        tracker = QualityTracker([link(0, 0)])
        record = tracker.record_initial([link(0, 0)])
        assert record.episode == 0
        assert record.f_measure == 1.0

    def test_on_episode_end(self):
        tracker = QualityTracker([link(0, 0), link(1, 1)])
        stats = EpisodeStats(index=1, feedback_count=10, positive_count=7, negative_count=3)
        record = tracker.on_episode_end(stats, LinkSet([link(0, 0)]))
        assert record.episode == 1
        assert record.recall == 0.5
        assert record.negative_fraction == pytest.approx(0.3)

    def test_series_accessors(self):
        tracker = QualityTracker([link(0, 0)])
        tracker.record_initial([])
        tracker.on_episode_end(
            EpisodeStats(index=1, feedback_count=4, positive_count=2, negative_count=2),
            LinkSet([link(0, 0)]),
        )
        assert tracker.episodes() == [0, 1]
        assert tracker.precision_series() == [0.0, 1.0]
        assert tracker.negative_feedback_series() == [50.0]

    def test_final_requires_records(self):
        with pytest.raises(ValueError):
            QualityTracker([]).final


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(("a", "long header"), [(1, 2.5), (10, 0.123456)])
        lines = text.splitlines()
        assert "long header" in lines[0]
        assert "0.123" in text  # floats formatted to 3 places

    def test_format_table_title(self):
        text = format_table(("x",), [(1,)], title="My title")
        assert text.startswith("My title")

    def test_quality_curve_table(self):
        tracker = QualityTracker([link(0, 0)])
        tracker.record_initial([link(0, 0)])
        text = quality_curve_table(tracker)
        assert "precision" in text and "1.000" in text

    def test_series_table_pads_missing(self):
        text = series_table("x", [1, 2], {"s": [0.5]})
        assert text.count("\n") == 3
