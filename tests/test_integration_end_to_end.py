"""Integration tests: the full pipeline on generated data, and the
query-feedback loop through the federation engine."""

import pytest

from repro.core import AlexConfig, AlexEngine, PartitionedAlex
from repro.datasets import PERSON_PROFILE, PairSpec, generate_pair
from repro.evaluation import QualityTracker, evaluate_links
from repro.features import FeatureSpace, build_partitioned_spaces
from repro.federation import Endpoint, FederatedEngine
from repro.feedback import (
    FeedbackSession,
    GroundTruthOracle,
    NoisyOracle,
    QueryFeedbackSession,
)
from repro.paris import paris_links


@pytest.fixture(scope="module")
def pair():
    return generate_pair(
        PairSpec(
            name="integration",
            left_name="left",
            right_name="right",
            profiles=(PERSON_PROFILE,),
            n_shared=40,
            n_left_only=30,
            n_right_only=15,
            noise_left=0.1,
            noise_right=0.3,
            seed=17,
        )
    )


@pytest.fixture(scope="module")
def space(pair):
    return FeatureSpace.build(pair.left, pair.right)


class TestFullPipeline:
    def test_paris_to_alex_improves_quality(self, pair, space):
        initial = paris_links(pair.left, pair.right, score_threshold=0.8)
        initial_quality = evaluate_links(initial, pair.ground_truth)

        engine = AlexEngine(space, initial, AlexConfig(episode_size=40, seed=9,
                                                       rollback_min_negatives=3))
        tracker = QualityTracker(pair.ground_truth)
        tracker.record_initial(engine.candidates)
        session = FeedbackSession(
            engine, GroundTruthOracle(pair.ground_truth), seed=9,
            on_episode_end=tracker.on_episode_end,
        )
        session.run(episode_size=40, max_episodes=30)

        final_quality = tracker.final.quality
        assert final_quality.f_measure > initial_quality.f_measure
        assert final_quality.recall > initial_quality.recall
        assert final_quality.f_measure > 0.85

    def test_partitioned_run_matches_quality(self, pair):
        spaces = build_partitioned_spaces(pair.left, pair.right, 3)
        initial = paris_links(pair.left, pair.right, score_threshold=0.8)
        alex = PartitionedAlex(spaces, initial, AlexConfig(episode_size=40, seed=9,
                                                           rollback_min_negatives=3))
        session = FeedbackSession(alex, GroundTruthOracle(pair.ground_truth), seed=9)
        session.run(episode_size=40, max_episodes=30)
        quality = evaluate_links(alex.candidates, pair.ground_truth)
        assert quality.f_measure > 0.8

    def test_noisy_feedback_degrades_gracefully(self, pair, space):
        initial = paris_links(pair.left, pair.right, score_threshold=0.8)

        def run(error_rate: float) -> float:
            engine = AlexEngine(space, initial.copy(), AlexConfig(episode_size=40, seed=9,
                                                                  rollback_min_negatives=3))
            oracle = GroundTruthOracle(pair.ground_truth)
            if error_rate:
                oracle = NoisyOracle(oracle, error_rate, seed=5)
            session = FeedbackSession(engine, oracle, seed=9)
            session.run(episode_size=40, max_episodes=20)
            return evaluate_links(engine.candidates, pair.ground_truth).f_measure

        clean = run(0.0)
        noisy = run(0.1)
        assert noisy > 0.6, "still produces good links under 10% noise"
        assert noisy <= clean + 0.05, "noise does not help"


class TestQueryFeedbackLoop:
    def test_feedback_through_federated_answers(self, pair, space):
        # Use ground-truth links as the federation's link set so the query
        # produces answers, and let feedback flow back to ALEX.
        gt_link = next(iter(pair.ground_truth))
        engine = AlexEngine(space, [gt_link], AlexConfig(episode_size=10, seed=1))
        federation = FederatedEngine(
            [Endpoint(pair.left), Endpoint(pair.right)], links=engine.candidates
        )
        session = QueryFeedbackSession(engine, federation, GroundTruthOracle(pair.ground_truth))

        left_ont = pair.left_ontology
        right_ont = pair.right_ontology
        query = f"""
            SELECT ?p ?name ?other WHERE {{
              ?p <{left_ont.base}label> ?name .
              ?p <{right_ont.base}name> ?other .
            }}
        """
        items = session.submit_query(query)
        assert items >= 1, "cross-dataset answers produced feedback"
        assert session.answers_judged >= 1
        # positive feedback on the ground-truth link triggered exploration
        assert len(engine.candidates) >= 1
