"""Tests for exclusive-group execution in the federated engine."""

import pytest

from repro.federation import Endpoint, FederatedEngine
from repro.links import Link, LinkSet
from repro.rdf import turtle
from repro.rdf.terms import URIRef

DB = "http://db/"
NYT = "http://nyt/"

QUERY = """
PREFIX db: <http://db/>
PREFIX nyt: <http://nyt/>
SELECT ?player ?name ?article WHERE {
  ?player db:award db:mvp2013 .
  ?player db:name ?name .
  ?player nyt:topicOf ?article .
}
"""


@pytest.fixture()
def graphs():
    dbpedia = turtle.load(
        """
        @prefix db: <http://db/> .
        db:lebron db:award db:mvp2013 ; db:name "LeBron James" .
        db:durant db:award db:mvp2014 ; db:name "Kevin Durant" .
        """,
        name="dbpedia",
    )
    nytimes = turtle.load(
        """
        @prefix nyt: <http://nyt/> .
        nyt:lebron nyt:topicOf nyt:a1 , nyt:a2 .
        """,
        name="nytimes",
    )
    return dbpedia, nytimes


@pytest.fixture()
def links():
    return LinkSet([Link(URIRef(DB + "lebron"), URIRef(NYT + "lebron"))])


def run(graphs, links, group_exclusive: bool):
    dbpedia, nytimes = graphs
    db_endpoint, nyt_endpoint = Endpoint(dbpedia), Endpoint(nytimes)
    engine = FederatedEngine([db_endpoint, nyt_endpoint], links, group_exclusive=group_exclusive)
    result = engine.select(QUERY)
    return result, db_endpoint, nyt_endpoint


class TestExclusiveGroups:
    def test_same_answers_with_and_without_grouping(self, graphs, links):
        grouped, _, _ = run(graphs, links, True)
        ungrouped, _, _ = run(graphs, links, False)

        def normalize(result):
            return sorted(
                tuple(sorted((v.name, t.n3()) for v, t in row.bindings.items()))
                for row in result
            )

        assert normalize(grouped) == normalize(ungrouped)
        assert len(grouped) == 2

    def test_provenance_preserved_with_grouping(self, graphs, links):
        grouped, _, _ = run(graphs, links, True)
        assert all(row.links_used for row in grouped)
        assert grouped.links_used() == frozenset(
            {Link(URIRef(DB + "lebron"), URIRef(NYT + "lebron"))}
        )

    def test_grouping_reduces_requests(self, graphs, links):
        _, db_grouped, _ = run(graphs, links, True)
        _, db_ungrouped, _ = run(graphs, links, False)
        # the two db patterns ship as one subquery when grouped
        assert db_grouped.request_count < db_ungrouped.request_count

    def test_group_with_sameas_entry_binding(self, graphs, links):
        """A group whose bound entry term needs counterpart substitution."""
        dbpedia, nytimes = graphs
        engine = FederatedEngine([Endpoint(dbpedia), Endpoint(nytimes)], links)
        result = engine.select(
            """
            PREFIX db: <http://db/>
            PREFIX nyt: <http://nyt/>
            SELECT ?name ?article WHERE {
              ?p nyt:topicOf ?article .
              ?p db:name ?name .
              ?p db:award db:mvp2013 .
            }
            """
        )
        assert len(result) == 2
        assert all(row.links_used for row in result)

    def test_match_group_counts_one_request(self, graphs):
        dbpedia, _ = graphs
        endpoint = Endpoint(dbpedia)
        from repro.sparql.ast import TriplePattern, Var

        patterns = [
            TriplePattern(Var("p"), URIRef(DB + "award"), URIRef(DB + "mvp2013")),
            TriplePattern(Var("p"), URIRef(DB + "name"), Var("n")),
        ]
        before = endpoint.request_count
        rows = list(endpoint.match_group(patterns, [{}]))
        assert endpoint.request_count == before + 1
        assert len(rows) == 1


class TestFederatedAggregates:
    def test_group_by_count_with_provenance(self, graphs, links):
        dbpedia, nytimes = graphs
        engine = FederatedEngine([Endpoint(dbpedia), Endpoint(nytimes)], links)
        result = engine.select(
            """
            PREFIX db: <http://db/>
            PREFIX nyt: <http://nyt/>
            SELECT ?name (COUNT(?a) AS ?articles) WHERE {
              ?p db:name ?name . ?p nyt:topicOf ?a .
            } GROUP BY ?name
            """
        )
        assert len(result) == 1  # only lebron is linked
        row = result.rows[0]
        from repro.sparql.ast import Var

        assert str(row.bindings[Var("articles")]) == "2"
        assert row.links_used, "aggregate rows keep their link provenance"

    def test_implicit_group_count(self, graphs, links):
        dbpedia, nytimes = graphs
        engine = FederatedEngine([Endpoint(dbpedia), Endpoint(nytimes)], links)
        result = engine.select(
            """
            PREFIX db: <http://db/>
            PREFIX nyt: <http://nyt/>
            SELECT (COUNT(*) AS ?n) WHERE { ?p db:name ?x . ?p nyt:topicOf ?a . }
            """
        )
        from repro.sparql.ast import Var

        assert len(result) == 1
        assert str(result.rows[0].bindings[Var("n")]) == "2"
