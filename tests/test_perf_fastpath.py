"""Fast-path feature-space construction: parity, bounds, caches, obs.

The contract under test (docs/performance.md): for every feature the θ-filter
admits, the prepared/cached/prefiltered/parallel builds produce results
**bit-identical** to the naive path — same links, same feature keys, same
float scores. Plus unit coverage for every upper bound (bound ≥ true metric
on randomized inputs), the cache bookkeeping, the blocking token memo, the
``links_of_left`` index, and the ``Graph.count`` fast path.
"""

import random

import pytest

from repro import obs
from repro.bench import parity_mismatches, render_report, run_bench
from repro.datasets import PERSON_PROFILE, PairSpec, generate_pair
from repro.features import FeatureSpace, blocked_pairs
from repro.features.blocking import entity_tokens
from repro.features.feature_set import build_feature_set, build_feature_set_prepared
from repro.links import Link
from repro.rdf.entity import entities_of
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.similarity import (
    jaro_winkler_similarity,
    jaro_winkler_upper_bound,
    levenshtein_similarity,
    levenshtein_upper_bound,
    normalize,
    string_similarity,
    string_similarity_upper_bound,
    token_jaccard_similarity,
    token_jaccard_upper_bound,
)
from repro.similarity.generic import best_object_similarity, object_similarity
from repro.similarity.prepared import (
    PreparedText,
    _prepared_jaro_winkler,
    best_prepared_similarity,
    cache_info,
    clear_caches,
    configure_score_cache,
    prepare_entity,
    prepare_term,
    prepared_object_similarity,
)
from repro.similarity.strings import shared_prefix_length


def _spec(shared=40, seed=5, **overrides):
    defaults = dict(
        name="fastpath",
        left_name="L",
        right_name="R",
        profiles=(PERSON_PROFILE,),
        n_shared=shared,
        n_left_only=15,
        n_right_only=15,
        seed=seed,
    )
    defaults.update(overrides)
    return PairSpec(**defaults)


@pytest.fixture()
def pair_entities():
    pair = generate_pair(_spec())
    return list(entities_of(pair.left)), list(entities_of(pair.right))


def _random_strings(rng, count, alphabet="abcdefg hi", max_len=14):
    out = []
    for _ in range(count):
        out.append("".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len))))
    return out


# --------------------------------------------------------------------- #
# Upper bounds: bound ≥ true score, always
# --------------------------------------------------------------------- #


class TestUpperBounds:
    def test_jaro_winkler_bound_dominates(self):
        rng = random.Random(11)
        strings = _random_strings(rng, 80)
        for a in strings[:40]:
            for b in strings[40:]:
                na, nb = normalize(a), normalize(b)
                assert jaro_winkler_upper_bound(na, nb) >= jaro_winkler_similarity(na, nb)

    def test_token_jaccard_bound_dominates(self):
        rng = random.Random(13)
        strings = _random_strings(rng, 80)
        for a in strings[:40]:
            for b in strings[40:]:
                assert token_jaccard_upper_bound(a, b) >= token_jaccard_similarity(a, b)

    def test_levenshtein_bound_dominates(self):
        rng = random.Random(17)
        strings = _random_strings(rng, 60, max_len=10)
        for a in strings[:30]:
            for b in strings[30:]:
                assert levenshtein_upper_bound(a, b) >= levenshtein_similarity(a, b)

    def test_string_similarity_bound_dominates(self):
        rng = random.Random(19)
        strings = _random_strings(rng, 60)
        for a in strings[:30]:
            for b in strings[30:]:
                assert string_similarity_upper_bound(a, b) >= string_similarity(a, b)

    def test_bounds_handle_empty_inputs(self):
        assert jaro_winkler_upper_bound("", "") == 1.0
        assert jaro_winkler_upper_bound("abc", "") == 0.0
        assert token_jaccard_upper_bound("", "") == 1.0
        assert token_jaccard_upper_bound("a", "") == 0.0
        assert levenshtein_upper_bound("", "") == 1.0


class TestPreparedJaro:
    def test_bit_identical_to_generic_metric(self):
        rng = random.Random(23)
        strings = _random_strings(rng, 120)
        for a in strings[:60]:
            for b in strings[60:]:
                na, nb = normalize(a), normalize(b)
                if na == nb or not na or not nb:
                    continue
                got = _prepared_jaro_winkler(
                    PreparedText(a), PreparedText(b), shared_prefix_length(na, nb)
                )
                assert got == jaro_winkler_similarity(na, nb)


# --------------------------------------------------------------------- #
# Prepared scoring parity (value level and attribute level)
# --------------------------------------------------------------------- #


class TestPreparedScoring:
    def _terms(self):
        return [
            Literal("LeBron James"),
            Literal("lebron  james"),
            Literal("1984", datatype="http://www.w3.org/2001/XMLSchema#integer"),
            Literal("1986", datatype="http://www.w3.org/2001/XMLSchema#integer"),
            Literal("3.25", datatype="http://www.w3.org/2001/XMLSchema#decimal"),
            Literal("true", datatype="http://www.w3.org/2001/XMLSchema#boolean"),
            Literal("1984-12-30", datatype="http://www.w3.org/2001/XMLSchema#date"),
            URIRef("http://a/res/LeBron_James"),
            URIRef("http://b/res/lebronJames"),
            Literal("Miami Heat"),
        ]

    def test_value_scores_match_object_similarity(self):
        clear_caches()
        terms = self._terms()
        for a in terms:
            for b in terms:
                got = prepared_object_similarity(prepare_term(a), prepare_term(b))
                assert got == object_similarity(a, b), (a, b)

    def test_best_prepared_matches_best_object_similarity(self):
        clear_caches()
        groups = [
            (Literal("LeBron James"), Literal("Akron")),
            (Literal("Lebron James"),),
            (Literal("1984", datatype="http://www.w3.org/2001/XMLSchema#integer"),),
            (URIRef("http://a/res/LeBron_James"), Literal("Cleveland")),
        ]
        for objects_a in groups:
            for objects_b in groups:
                prepared_a = tuple(prepare_term(t) for t in objects_a)
                prepared_b = tuple(prepare_term(t) for t in objects_b)
                got = best_prepared_similarity(prepared_a, prepared_b)
                assert got == best_object_similarity(objects_a, objects_b)

    def test_theta_floor_never_changes_admitted_scores(self, pair_entities):
        left, right = pair_entities
        clear_caches()
        for theta in (0.0, 0.3, 0.6):
            for left_entity in left[:8]:
                prepared_left = prepare_entity(left_entity)
                for right_entity in right[:8]:
                    naive = build_feature_set(left_entity, right_entity, theta)
                    fast = build_feature_set_prepared(
                        prepared_left, prepare_entity(right_entity), theta
                    )
                    assert naive == fast


# --------------------------------------------------------------------- #
# End-to-end build parity
# --------------------------------------------------------------------- #


class TestBuildParity:
    @pytest.mark.parametrize("use_blocking", [True, False])
    def test_fast_build_is_bit_identical(self, pair_entities, use_blocking):
        left, right = pair_entities
        naive = FeatureSpace.build(left, right, use_blocking=use_blocking, fast=False)
        clear_caches()
        fast = FeatureSpace.build(left, right, use_blocking=use_blocking, fast=True)
        assert parity_mismatches(naive, fast) == 0
        assert naive.total_pairs_considered == fast.total_pairs_considered

    def test_parallel_build_matches_single_process(self, pair_entities):
        left, right = pair_entities
        single = FeatureSpace.build(left, right, fast=True)
        parallel = FeatureSpace.build(left, right, fast=True, workers=2)
        assert parity_mismatches(single, parallel) == 0
        assert single.total_pairs_considered == parallel.total_pairs_considered

    def test_parallel_build_is_deterministic(self, pair_entities):
        left, right = pair_entities
        first = FeatureSpace.build(left, right, fast=True, workers=3)
        second = FeatureSpace.build(left, right, fast=True, workers=3)
        assert parity_mismatches(first, second) == 0

    def test_parallel_build_merges_obs(self, pair_entities):
        left, right = pair_entities
        with obs.use_registry() as registry:
            FeatureSpace.build(left, right, fast=True, workers=2)
        snapshot = registry.snapshot()
        assert obs.counter_total(snapshot, "space.build.partitions") == 2
        assert obs.counter_total(snapshot, "space.pairs.admitted") > 0
        names = {h["name"] for h in snapshot["histograms"]}
        assert "space.build.merge" in names
        assert "space.build.score" in names


# --------------------------------------------------------------------- #
# Obs instrumentation of a single-process build
# --------------------------------------------------------------------- #


class TestBuildObservability:
    def test_phase_timers_and_cache_counters(self, pair_entities):
        left, right = pair_entities
        clear_caches()
        with obs.use_registry() as registry:
            FeatureSpace.build(left, right, fast=True)
        snapshot = registry.snapshot()
        names = {h["name"] for h in snapshot["histograms"]}
        assert {"space.build.block", "space.build.score", "space.build.freeze"} <= names
        hits = obs.counter_total(snapshot, "similarity.cache.hits")
        misses = obs.counter_total(snapshot, "similarity.cache.misses")
        assert misses > 0
        assert hits > 0
        assert obs.counter_total(snapshot, "space.pairs.scanned") >= obs.counter_total(
            snapshot, "space.pairs.admitted"
        )


# --------------------------------------------------------------------- #
# Cache bookkeeping
# --------------------------------------------------------------------- #


class TestCaches:
    def test_cache_info_reports_sizes(self):
        clear_caches()
        prepare_term(Literal("Cleveland Cavaliers"))
        info = cache_info()
        assert info["term_entries"] == 1
        assert info["score_max"] > 0

    def test_configure_zero_disables_score_cache(self):
        clear_caches()
        configure_score_cache(0)
        try:
            a = prepare_term(Literal("LeBron James"))
            b = prepare_term(Literal("LeBron Raymone James"))
            first = prepared_object_similarity(a, b)
            second = prepared_object_similarity(a, b)
            assert first == second
            assert cache_info()["score_entries"] == 0
        finally:
            configure_score_cache(1 << 18)
            clear_caches()

    def test_score_cache_eviction_respects_bound(self):
        clear_caches()
        configure_score_cache(4)
        try:
            for index in range(10):
                a = prepare_term(Literal(f"alpha beta {index}"))
                b = prepare_term(Literal(f"alpha gamma {index + 1}"))
                prepared_object_similarity(a, b)
            assert cache_info()["score_entries"] <= 4
        finally:
            configure_score_cache(1 << 18)
            clear_caches()


# --------------------------------------------------------------------- #
# Satellites: blocking memo, links_of_left, Graph.count fast path
# --------------------------------------------------------------------- #


class TestBlockingMemo:
    def test_each_entity_tokenized_once_per_build(self, pair_entities, monkeypatch):
        import repro.features.blocking as blocking

        left, right = pair_entities
        calls = []
        real = entity_tokens
        monkeypatch.setattr(
            blocking, "entity_tokens", lambda entity: calls.append(entity) or real(entity)
        )
        token_map = {}
        list(blocked_pairs(left, right, token_map=token_map))
        assert len(calls) == len(left) + len(right)
        assert len(set(calls)) == len(calls)


class TestLinksOfLeft:
    def test_index_matches_scan(self, pair_entities):
        left, right = pair_entities
        space = FeatureSpace.build(left, right, fast=True)
        for link in list(space.links())[:50]:
            assert link in space.links_of_left(link.left)
        some_left = next(iter(space.links())).left
        scan = [l for l in space.links() if l.left == some_left]
        assert sorted(space.links_of_left(some_left)) == sorted(scan)
        missing = URIRef("http://nowhere/x")
        assert space.links_of_left(missing) == []

    def test_unfrozen_space_falls_back_to_scan(self):
        space = FeatureSpace(0.3)
        left_uri = URIRef("http://a/res/x")
        link = Link(left_uri, URIRef("http://b/res/y"))
        space._feature_sets[link] = None
        assert space.links_of_left(left_uri) == [link]

    def test_old_pickles_without_index_still_work(self, pair_entities):
        left, right = pair_entities
        space = FeatureSpace.build(left[:10], right[:10], fast=True)
        del space._by_left  # a space saved before the index existed
        some = [l for l in space.links()]
        if some:
            assert space.links_of_left(some[0].left)


class TestGraphCountFastPath:
    def test_bound_po_count(self):
        graph = Graph()
        p = URIRef("http://x/p")
        o = Literal("v")
        for index in range(5):
            graph.add((URIRef(f"http://x/s{index}"), p, o))
        graph.add((URIRef("http://x/s0"), p, Literal("other")))
        assert graph.count(predicate=p, object=o) == 5
        assert graph.count(predicate=p, object=Literal("absent")) == 0
        assert graph.count(predicate=URIRef("http://x/q"), object=o) == 0

    def test_optimizer_uses_po_estimate(self):
        from repro.sparql.ast import TriplePattern, Var
        from repro.sparql.optimizer import estimate_cardinality

        graph = Graph()
        p = URIRef("http://x/p")
        o = Literal("v")
        for index in range(4):
            graph.add((URIRef(f"http://x/s{index}"), p, o))
        estimate = estimate_cardinality(graph, TriplePattern(Var("s"), p, o), set())
        assert estimate == 4.0


# --------------------------------------------------------------------- #
# Bench harness (quick mode)
# --------------------------------------------------------------------- #


class TestBenchHarness:
    def test_quick_bench_payload_schema_and_parity(self, tmp_path):
        from repro.bench import write_payload

        payload = run_bench(quick=True)
        assert payload["format"] == "repro-bench/1"
        assert payload["parity"]["ok"] is True
        assert payload["speedup"] is not None and payload["speedup"] > 0
        modes = {record["mode"] for record in payload["records"]}
        assert modes == {"naive", "fast"}
        for record in payload["records"]:
            assert record["op"] == "space.build"
            assert record["pairs_considered"] == record["n_left"] * record["n_right"]
            assert record["wall_seconds"] > 0
            assert record["space_size"] > 0
        out = tmp_path / "BENCH_space.json"
        write_payload(payload, str(out))
        import json

        assert json.loads(out.read_text())["format"] == "repro-bench/1"
        report = render_report(payload)
        assert "parity: OK" in report
