"""Unit tests for SPARQL aggregation and CONSTRUCT."""

import pytest

from repro.errors import QueryEvaluationError, QuerySyntaxError
from repro.rdf import turtle
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.sparql import Var, parse_query, query
from repro.sparql.aggregates import Aggregate, evaluate_aggregate, group_solutions

PREFIX = "PREFIX ex: <http://x/> "


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://x/> .
        ex:a ex:team ex:heat ; ex:pts 10 ; ex:name "Alpha" .
        ex:b ex:team ex:heat ; ex:pts 20 ; ex:name "Bravo" .
        ex:c ex:team ex:okc  ; ex:pts 30 ; ex:name "Carol" .
        ex:d ex:team ex:okc  ; ex:pts 30 .
        """
    )


class TestParsing:
    def test_aggregate_projection(self):
        q = parse_query(PREFIX + "SELECT (COUNT(?x) AS ?n) WHERE { ?x ex:team ?t }")
        assert q.aggregates[0].function == "COUNT"
        assert q.aggregates[0].alias == Var("n")

    def test_count_star(self):
        q = parse_query(PREFIX + "SELECT (COUNT(*) AS ?n) WHERE { ?x ex:team ?t }")
        assert q.aggregates[0].var is None

    def test_distinct_inside_aggregate(self):
        q = parse_query(PREFIX + "SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?x ex:team ?t }")
        assert q.aggregates[0].distinct is True

    def test_group_by(self):
        q = parse_query(
            PREFIX + "SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x ex:team ?t } GROUP BY ?t"
        )
        assert q.group_by == [Var("t")]
        assert q.projected() == [Var("t"), Var("n")]

    def test_plain_vars_with_aggregates_need_group_by(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(PREFIX + "SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x ex:team ?t }")

    def test_missing_alias(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(PREFIX + "SELECT (COUNT(?x)) WHERE { ?x ex:team ?t }")

    def test_sum_star_invalid(self):
        with pytest.raises((QuerySyntaxError, QueryEvaluationError)):
            parse_query(PREFIX + "SELECT (SUM(*) AS ?n) WHERE { ?x ex:team ?t }")


class TestEvaluation:
    def test_count_per_group(self, graph):
        result = query(
            graph,
            PREFIX + "SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x ex:team ?t } "
            "GROUP BY ?t ORDER BY ?t",
        )
        counts = {str(row[Var("t")]): int(str(row[Var("n")])) for row in result}
        assert counts == {"http://x/heat": 2, "http://x/okc": 2}

    def test_avg_and_sum(self, graph):
        result = query(
            graph,
            PREFIX
            + "SELECT ?t (AVG(?p) AS ?avg) (SUM(?p) AS ?sum) WHERE "
            "{ ?x ex:team ?t ; ex:pts ?p } GROUP BY ?t ORDER BY ?t",
        )
        rows = result.as_tuples()
        heat = next(r for r in rows if "heat" in str(r[0]))
        assert int(str(heat[1])) == 15
        assert int(str(heat[2])) == 30

    def test_min_max(self, graph):
        result = query(
            graph,
            PREFIX + "SELECT (MIN(?p) AS ?lo) (MAX(?p) AS ?hi) WHERE { ?x ex:pts ?p }",
        )
        row = result.rows[0]
        assert int(str(row[Var("lo")])) == 10
        assert int(str(row[Var("hi")])) == 30

    def test_count_distinct(self, graph):
        result = query(
            graph,
            PREFIX + "SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?x ex:pts ?p }",
        )
        assert int(str(result.rows[0][Var("n")])) == 3

    def test_implicit_single_group(self, graph):
        result = query(graph, PREFIX + "SELECT (COUNT(*) AS ?n) WHERE { ?x ex:team ?t }")
        assert len(result) == 1
        assert int(str(result.rows[0][Var("n")])) == 4

    def test_empty_input_count_zero(self, graph):
        result = query(graph, PREFIX + "SELECT (COUNT(*) AS ?n) WHERE { ?x ex:none ?t }")
        assert int(str(result.rows[0][Var("n")])) == 0

    def test_avg_of_nothing_unbound(self, graph):
        result = query(graph, PREFIX + "SELECT (AVG(?p) AS ?a) WHERE { ?x ex:none ?p }")
        assert result.rows[0].get(Var("a")) is None

    def test_sample(self, graph):
        result = query(graph, PREFIX + "SELECT (SAMPLE(?n) AS ?s) WHERE { ?x ex:name ?n }")
        assert isinstance(result.rows[0][Var("s")], Literal)

    def test_sum_of_strings_errors(self, graph):
        with pytest.raises(QueryEvaluationError):
            query(graph, PREFIX + "SELECT (SUM(?n) AS ?s) WHERE { ?x ex:name ?n }")


class TestGroupSolutions:
    def test_group_order_first_seen(self):
        t = Var("t")
        solutions = [
            {t: URIRef("http://x/okc")},
            {t: URIRef("http://x/heat")},
            {t: URIRef("http://x/okc")},
        ]
        groups = group_solutions(solutions, [t])
        assert [str(key[t]) for key, _ in groups] == ["http://x/okc", "http://x/heat"]
        assert [len(members) for _, members in groups] == [2, 1]

    def test_unbound_key_forms_own_group(self):
        t = Var("t")
        groups = group_solutions([{t: URIRef("http://x/a")}, {}], [t])
        assert len(groups) == 2

    def test_invalid_aggregate_function(self):
        with pytest.raises(QueryEvaluationError):
            Aggregate(function="MEDIAN", var=Var("x"), alias=Var("m"))


class TestConstruct:
    def test_basic_construct(self, graph):
        out = query(
            graph,
            PREFIX + "CONSTRUCT { ?x ex:memberOf ?t } WHERE { ?x ex:team ?t }",
        )
        assert isinstance(out, Graph)
        assert len(out) == 4
        assert out.count(predicate=URIRef("http://x/memberOf")) == 4

    def test_constant_template_terms(self, graph):
        out = query(
            graph,
            PREFIX + "CONSTRUCT { ?x a ex:Player } WHERE { ?x ex:pts ?p }",
        )
        assert len(out) == 4

    def test_unbound_template_var_skipped(self, graph):
        out = query(
            graph,
            PREFIX + "CONSTRUCT { ?x ex:named ?n } WHERE "
            "{ ?x ex:team ?t OPTIONAL { ?x ex:name ?n } }",
        )
        # ex:d has no name; its row instantiates nothing
        assert len(out) == 3

    def test_literal_subject_skipped(self, graph):
        out = query(
            graph,
            PREFIX + "CONSTRUCT { ?n ex:of ?x } WHERE { ?x ex:name ?n }",
        )
        assert len(out) == 0

    def test_empty_template_rejected(self, graph):
        with pytest.raises(QuerySyntaxError):
            query(graph, PREFIX + "CONSTRUCT { } WHERE { ?x ex:team ?t }")
