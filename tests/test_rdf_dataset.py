"""Tests for RDF datasets (named graphs) and N-Quads IO."""

import pytest

from repro.errors import ParseError, RDFError
from repro.rdf import nquads
from repro.rdf.dataset import Dataset, Quad
from repro.rdf.terms import Literal, URIRef
from repro.rdf.triples import Triple

G1 = URIRef("http://graphs/one")
G2 = URIRef("http://graphs/two")


def quad(s: str, p: str, o, g: URIRef | None = None) -> Quad:
    obj = o if not isinstance(o, str) else URIRef(f"http://x/{o}")
    return Quad(URIRef(f"http://x/{s}"), URIRef(f"http://x/{p}"), obj, g)


@pytest.fixture()
def dataset() -> Dataset:
    ds = Dataset(name="test")
    ds.add(quad("a", "p", "b"))
    ds.add(quad("a", "p", "c", G1))
    ds.add(quad("d", "q", Literal("v"), G1))
    ds.add(quad("e", "p", "f", G2))
    return ds


class TestDataset:
    def test_default_and_named_separate(self, dataset):
        assert len(dataset.default) == 1
        assert len(dataset.graph(G1)) == 2
        assert len(dataset.graph(G2)) == 1
        assert len(dataset) == 4

    def test_graph_created_on_access(self):
        ds = Dataset()
        graph = ds.graph(G1)
        assert len(graph) == 0
        assert ds.has_graph(G1)

    def test_graph_name_validation(self):
        with pytest.raises(RDFError):
            Dataset().graph("not-a-uri")  # type: ignore[arg-type]

    def test_quads_pattern_all_graphs(self, dataset):
        matches = list(dataset.quads(predicate=URIRef("http://x/p")))
        assert len(matches) == 3
        assert {m.graph_name for m in matches} == {None, G1, G2}

    def test_quads_single_graph(self, dataset):
        matches = list(dataset.quads(graph_name=G1))
        assert len(matches) == 2
        assert all(m.graph_name == G1 for m in matches)

    def test_quads_missing_graph_empty(self, dataset):
        assert list(dataset.quads(graph_name=URIRef("http://graphs/none"))) == []

    def test_remove_quad(self, dataset):
        assert dataset.remove(quad("a", "p", "c", G1)) is True
        assert dataset.remove(quad("a", "p", "c", G1)) is False
        assert len(dataset.graph(G1)) == 1

    def test_remove_graph(self, dataset):
        assert dataset.remove_graph(G2) is True
        assert not dataset.has_graph(G2)
        assert dataset.remove_graph(G2) is False

    def test_union(self, dataset):
        union = dataset.union()
        assert len(union) == 4

    def test_as_endpoints(self, dataset):
        endpoints = dataset.as_endpoints()
        assert [e.name for e in endpoints] == [G1.value, G2.value]
        assert len(endpoints[0].graph) == 2


class TestNQuads:
    def test_parse_quad_line(self):
        parsed = nquads.parse_line(
            "<http://x/a> <http://x/p> <http://x/b> <http://graphs/one> ."
        )
        assert parsed.graph_name == G1

    def test_parse_triple_line_default_graph(self):
        parsed = nquads.parse_line("<http://x/a> <http://x/p> \"v\" .")
        assert parsed.graph_name is None
        assert parsed.object == Literal("v")

    def test_malformed(self):
        with pytest.raises(ParseError):
            nquads.parse_line("<http://x/a> <http://x/p> <http://x/b> <http://g> extra .")

    def test_round_trip(self, dataset):
        text = nquads.serialize(dataset.quads())
        back = nquads.load(text)
        assert set(back.quads()) == set(dataset.quads())

    def test_file_round_trip(self, dataset, tmp_path):
        path = str(tmp_path / "data.nq")
        count = nquads.dump_file(dataset, path)
        assert count == 4
        assert set(nquads.load_file(path).quads()) == set(dataset.quads())

    def test_comments_skipped(self):
        ds = nquads.load("# comment\n\n<http://x/a> <http://x/p> <http://x/b> .\n")
        assert len(ds) == 1


class TestFederationFromDataset:
    def test_federated_query_over_nquads(self):
        """One N-Quads snapshot drives a federated query end to end."""
        from repro.federation import FederatedEngine
        from repro.links import LinkSet

        text = "\n".join(
            [
                '<http://db/lebron> <http://db/award> <http://db/mvp> <http://graphs/dbpedia> .',
                '<http://nyt/lebron> <http://nyt/topicOf> <http://nyt/a1> <http://graphs/nytimes> .',
                '<http://db/lebron> <http://www.w3.org/2002/07/owl#sameAs> <http://nyt/lebron> .',
            ]
        )
        dataset = nquads.load(text)
        links = LinkSet.from_graph(dataset.default)
        engine = FederatedEngine(dataset.as_endpoints(), links)
        result = engine.select(
            "SELECT ?a WHERE { ?p <http://db/award> <http://db/mvp> . "
            "?p <http://nyt/topicOf> ?a . }"
        )
        assert len(result) == 1
        assert result.rows[0].links_used
