"""Unit tests for N-Triples and Turtle parsing/serialization."""

import pytest

from repro.errors import ParseError
from repro.rdf import ntriples, turtle
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, NamespaceManager
from repro.rdf.terms import BNode, Literal, URIRef, XSD_DOUBLE, XSD_INTEGER
from repro.rdf.triples import Triple


class TestNTriplesParsing:
    def test_simple_triple(self):
        t = ntriples.parse_line("<http://x/a> <http://x/p> <http://x/b> .")
        assert t == Triple(URIRef("http://x/a"), URIRef("http://x/p"), URIRef("http://x/b"))

    def test_literal_object(self):
        t = ntriples.parse_line('<http://x/a> <http://x/p> "hello" .')
        assert t.object == Literal("hello")

    def test_language_literal(self):
        t = ntriples.parse_line('<http://x/a> <http://x/p> "bonjour"@fr .')
        assert t.object == Literal("bonjour", language="fr")

    def test_typed_literal(self):
        t = ntriples.parse_line(
            '<http://x/a> <http://x/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert t.object == Literal("42", datatype=XSD_INTEGER)

    def test_escapes(self):
        t = ntriples.parse_line('<http://x/a> <http://x/p> "line\\nbreak \\"q\\"" .')
        assert t.object.lexical == 'line\nbreak "q"'

    def test_bnode_subject(self):
        t = ntriples.parse_line("_:b1 <http://x/p> <http://x/o> .")
        assert t.subject == BNode("b1")

    def test_comment_and_blank_lines(self):
        assert ntriples.parse_line("# a comment") is None
        assert ntriples.parse_line("   ") is None

    @pytest.mark.parametrize(
        "bad",
        [
            "<http://x/a> <http://x/p> <http://x/b>",  # missing dot
            "<http://x/a> <http://x/p> .",  # missing object
            '<http://x/a> "lit" <http://x/b> .',  # literal predicate
            "<http://x/a> <http://x/p> <http://x/b> . extra",
            '<http://x/a> <http://x/p> "unterminated .',
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(ParseError):
            ntriples.parse_line(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as info:
            list(ntriples.parse("<http://x/a> <http://x/p> <http://x/o> .\nbad line"))
        assert info.value.line == 2


class TestNTriplesRoundTrip:
    def test_round_trip(self):
        g = Graph()
        g.add(Triple(URIRef("http://x/a"), URIRef("http://x/p"), Literal('tricky "text"\n')))
        g.add(Triple(URIRef("http://x/a"), URIRef("http://x/p"), Literal("42", datatype=XSD_INTEGER)))
        g.add(Triple(BNode("n"), URIRef("http://x/p"), Literal("fr", language="fr")))
        text = ntriples.serialize(g.triples())
        back = ntriples.load(text)
        assert set(back.triples()) == set(g.triples())

    def test_serialize_sorted_deterministic(self):
        t1 = Triple(URIRef("http://x/b"), URIRef("http://x/p"), Literal("1"))
        t2 = Triple(URIRef("http://x/a"), URIRef("http://x/p"), Literal("2"))
        assert ntriples.serialize([t1, t2]) == ntriples.serialize([t2, t1])

    def test_file_round_trip(self, tmp_path):
        g = Graph(triples=[Triple(URIRef("http://x/a"), URIRef("http://x/p"), Literal("v"))])
        path = str(tmp_path / "out.nt")
        count = ntriples.dump_file(g, path)
        assert count == 1
        assert set(ntriples.load_file(path).triples()) == set(g.triples())


class TestTurtle:
    def test_prefixes_and_semicolons(self):
        g = turtle.load(
            """
            @prefix ex: <http://x/> .
            ex:a ex:p ex:b ; ex:q "v" , "w" .
            """
        )
        assert len(g) == 3
        assert Triple(URIRef("http://x/a"), URIRef("http://x/q"), Literal("w")) in g

    def test_a_keyword(self):
        g = turtle.load("@prefix ex: <http://x/> . ex:a a ex:Type .")
        assert next(iter(g)).predicate == RDF.type

    def test_numeric_shorthand(self):
        g = turtle.load("@prefix ex: <http://x/> . ex:a ex:year 1984 ; ex:height 2.06 .")
        objects = {t.object for t in g}
        assert Literal("1984", datatype=XSD_INTEGER) in objects
        assert Literal("2.06", datatype=XSD_DOUBLE) in objects

    def test_boolean_shorthand(self):
        g = turtle.load("@prefix ex: <http://x/> . ex:a ex:active true .")
        assert next(iter(g)).object.to_python() is True

    def test_datatype_curie(self):
        g = turtle.load(
            '@prefix ex: <http://x/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> . '
            'ex:a ex:p "5"^^xsd:integer .'
        )
        assert next(iter(g)).object == Literal("5", datatype=XSD_INTEGER)

    def test_language_tag(self):
        g = turtle.load('@prefix ex: <http://x/> . ex:a ex:p "salut"@fr .')
        assert next(iter(g)).object.language == "fr"

    def test_unbound_prefix_fails(self):
        with pytest.raises(ParseError):
            turtle.load("nope:a nope:p nope:b .")

    def test_unterminated_statement_fails(self):
        with pytest.raises(ParseError):
            turtle.load("@prefix ex: <http://x/> . ex:a ex:p ex:b")

    def test_default_namespaces_available(self):
        g = turtle.load("@prefix ex: <http://x/> . ex:a rdfs:label \"L\" .")
        assert next(iter(g)).predicate.value.endswith("label")

    def test_round_trip_through_serializer(self):
        original = turtle.load(
            """
            @prefix ex: <http://x/> .
            ex:a a ex:Type ; ex:p "v" ; ex:year 1984 .
            ex:b ex:p ex:a .
            """
        )
        manager = NamespaceManager()
        manager.bind("ex", "http://x/")
        text = turtle.serialize(original, manager)
        back = turtle.load(text, NamespaceManager())
        assert set(back.triples()) == set(original.triples())
