"""Property-based tests for the similarity layer (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    numeric_similarity,
    string_similarity,
    token_jaccard_similarity,
    trigram_dice_similarity,
    year_similarity,
)

text = st.text(max_size=30)
word = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")), min_size=1, max_size=15)
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestStringMetricProperties:
    @given(text, text)
    def test_levenshtein_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(text)
    def test_levenshtein_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(text, text, text)
    @settings(max_examples=50)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)

    @given(text, text)
    def test_all_string_scores_in_unit_interval(self, a, b):
        for fn in (
            levenshtein_similarity,
            jaro_similarity,
            jaro_winkler_similarity,
            token_jaccard_similarity,
            trigram_dice_similarity,
            string_similarity,
        ):
            score = fn(a, b)
            assert 0.0 <= score <= 1.0, fn.__name__

    @given(text, text)
    def test_all_string_scores_symmetric(self, a, b):
        for fn in (
            levenshtein_similarity,
            jaro_similarity,
            token_jaccard_similarity,
            trigram_dice_similarity,
            string_similarity,
        ):
            assert math.isclose(fn(a, b), fn(b, a), abs_tol=1e-12), fn.__name__

    @given(word)
    def test_identity_scores_one(self, a):
        assert string_similarity(a, a) == 1.0
        assert jaro_similarity(a, a) == 1.0
        assert trigram_dice_similarity(a, a) == 1.0

    @given(text, text)
    def test_winkler_dominates_jaro(self, a, b):
        assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12


class TestNumericProperties:
    @given(finite, finite)
    def test_numeric_in_unit_interval(self, a, b):
        assert 0.0 <= numeric_similarity(float(a), float(b)) <= 1.0

    @given(finite, finite)
    def test_numeric_symmetry(self, a, b):
        assert numeric_similarity(float(a), float(b)) == numeric_similarity(float(b), float(a))

    @given(finite)
    def test_numeric_identity(self, a):
        assert numeric_similarity(float(a), float(a)) == 1.0

    @given(st.integers(1000, 2999), st.integers(1000, 2999))
    def test_year_in_unit_interval_and_symmetric(self, a, b):
        score = year_similarity(a, b)
        assert 0.0 < score <= 1.0
        assert score == year_similarity(b, a)

    @given(st.integers(1000, 2900), st.integers(0, 50))
    def test_year_monotone_in_gap(self, base, gap):
        nearer = year_similarity(base, base + gap)
        farther = year_similarity(base, base + gap + 10)
        assert nearer >= farther
