"""Tests for BIND and VALUES."""

import pytest

from repro.errors import QueryEvaluationError, QuerySyntaxError
from repro.rdf import turtle
from repro.rdf.terms import Literal, URIRef
from repro.sparql import Var, query
from repro.sparql.parser import parse_query

PRE = "PREFIX ex: <http://x/> "


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://x/> .
        ex:a ex:name "Alpha" ; ex:pts 10 .
        ex:b ex:name "Bravo" ; ex:pts 20 .
        ex:c ex:name "Carol" .
        """
    )


class TestBind:
    def test_bind_computed_value(self, graph):
        result = query(
            graph, PRE + "SELECT ?n ?u WHERE { ?p ex:name ?n BIND(UCASE(?n) AS ?u) }"
        )
        assert {str(row[Var("u")]) for row in result} == {"ALPHA", "BRAVO", "CAROL"}

    def test_bind_length(self, graph):
        result = query(
            graph, PRE + "SELECT ?len WHERE { ?p ex:name ?n BIND(STRLEN(?n) AS ?len) }"
        )
        assert all(int(str(v)) == 5 for v in result.column("len"))

    def test_bind_constant(self, graph):
        result = query(
            graph, PRE + 'SELECT ?tag WHERE { ?p ex:name ?n BIND("x" AS ?tag) }'
        )
        assert all(str(v) == "x" for v in result.column("tag"))

    def test_bind_error_leaves_unbound(self, graph):
        # ABS of a string errors; the row survives with ?v unbound
        result = query(
            graph, PRE + "SELECT ?n ?v WHERE { ?p ex:name ?n BIND(ABS(?n) AS ?v) }"
        )
        assert len(result) == 3
        assert all(v is None for v in result.column("v"))

    def test_bind_rebinding_rejected(self, graph):
        with pytest.raises(QueryEvaluationError):
            query(graph, PRE + "SELECT ?n WHERE { ?p ex:name ?n BIND(UCASE(?n) AS ?n) }")

    def test_bind_usable_in_filter(self, graph):
        result = query(
            graph,
            PRE + "SELECT ?n WHERE { ?p ex:name ?n ; ex:pts ?s "
            "BIND(?s AS ?score) FILTER (?score > 15) }",
        )
        assert [str(v) for v in result.column("n")] == ["Bravo"]

    def test_bind_missing_as_rejected(self, graph):
        with pytest.raises(QuerySyntaxError):
            parse_query(PRE + "SELECT ?n WHERE { ?p ex:name ?n BIND(UCASE(?n)) }")


class TestValues:
    def test_single_var_values(self, graph):
        result = query(
            graph, PRE + "SELECT ?n WHERE { VALUES ?p { ex:a ex:c } ?p ex:name ?n }"
        )
        assert {str(v) for v in result.column("n")} == {"Alpha", "Carol"}

    def test_values_restricts_join(self, graph):
        result = query(
            graph, PRE + "SELECT ?n WHERE { ?p ex:name ?n VALUES ?n { \"Bravo\" } }"
        )
        assert [str(v) for v in result.column("n")] == ["Bravo"]

    def test_multi_var_values(self, graph):
        result = query(
            graph,
            PRE + "SELECT ?p ?want WHERE { VALUES (?p ?want) { (ex:a 10) (ex:b 99) } "
            "?p ex:pts ?pts FILTER (?pts = ?want) }",
        )
        assert len(result) == 1
        assert str(result.rows[0][Var("p")]) == "http://x/a"

    def test_undef_leaves_var_free(self, graph):
        result = query(
            graph,
            PRE + "SELECT ?p ?n WHERE { VALUES (?p ?n) { (ex:a UNDEF) } ?p ex:name ?n }",
        )
        assert len(result) == 1
        assert str(result.rows[0][Var("n")]) == "Alpha"

    def test_literal_values(self, graph):
        result = query(
            graph, PRE + 'SELECT ?x WHERE { VALUES ?x { "one" 2 } }'
        )
        assert len(result) == 2

    def test_values_syntax_errors(self, graph):
        with pytest.raises(QuerySyntaxError):
            parse_query(PRE + "SELECT ?x WHERE { VALUES { ex:a } }")
        with pytest.raises(QuerySyntaxError):
            parse_query(PRE + "SELECT ?x WHERE { VALUES ?x { ex:a }")
