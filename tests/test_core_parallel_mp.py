"""Tests for the multiprocessing partition runner (and pickling support)."""

import pickle

import pytest

from repro.core import AlexConfig
from repro.core.parallel_mp import run_partitions_parallel
from repro.datasets import PERSON_PROFILE, PairSpec, generate_pair
from repro.errors import ConfigError
from repro.evaluation import evaluate_links
from repro.features import FeatureSpace, build_partitioned_spaces
from repro.links import LinkSet
from repro.paris import paris_links
from repro.rdf.terms import BNode, Literal, URIRef


@pytest.fixture(scope="module")
def pair():
    return generate_pair(
        PairSpec(
            name="mp",
            left_name="left",
            right_name="right",
            profiles=(PERSON_PROFILE,),
            n_shared=30,
            n_left_only=20,
            n_right_only=10,
            noise_left=0.1,
            noise_right=0.25,
            seed=21,
        )
    )


class TestPickling:
    def test_terms_pickle(self):
        for term in (URIRef("http://x/a"), BNode("b1"), Literal("v", language="en"),
                     Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")):
            assert pickle.loads(pickle.dumps(term)) == term

    def test_feature_space_pickles(self, pair):
        space = FeatureSpace.build(pair.left, pair.right)
        clone = pickle.loads(pickle.dumps(space))
        assert set(clone.links()) == set(space.links())
        some_link = next(iter(space.links()))
        assert clone.feature_set(some_link) == space.feature_set(some_link)

    def test_linkset_pickles(self, pair):
        clone = pickle.loads(pickle.dumps(pair.ground_truth))
        assert clone == pair.ground_truth


class TestParallelRun:
    def test_parallel_matches_quality(self, pair):
        spaces = build_partitioned_spaces(pair.left, pair.right, 2)
        initial = paris_links(pair.left, pair.right, 0.8)
        merged, outcomes = run_partitions_parallel(
            spaces,
            initial,
            pair.ground_truth,
            AlexConfig(episode_size=30, seed=5, rollback_min_negatives=3),
            episode_size=30,
            max_episodes=25,
            max_workers=2,
        )
        assert len(outcomes) == 2
        quality = evaluate_links(merged, pair.ground_truth)
        assert quality.f_measure > 0.75

    def test_sequential_fallback_deterministic(self, pair):
        spaces = build_partitioned_spaces(pair.left, pair.right, 2)
        initial = paris_links(pair.left, pair.right, 0.8)

        def run():
            merged, _ = run_partitions_parallel(
                spaces, initial, pair.ground_truth,
                AlexConfig(episode_size=20, seed=5, rollback_min_negatives=3),
                episode_size=20, max_episodes=10, max_workers=1,
            )
            return merged.snapshot()

        assert run() == run()

    def test_parallel_equals_sequential(self, pair):
        spaces = build_partitioned_spaces(pair.left, pair.right, 2)
        initial = paris_links(pair.left, pair.right, 0.8)
        config = AlexConfig(episode_size=20, seed=5, rollback_min_negatives=3)
        sequential, _ = run_partitions_parallel(
            spaces, initial, pair.ground_truth, config,
            episode_size=20, max_episodes=10, max_workers=1,
        )
        parallel, _ = run_partitions_parallel(
            spaces, initial, pair.ground_truth, config,
            episode_size=20, max_episodes=10, max_workers=2,
        )
        assert sequential.snapshot() == parallel.snapshot()

    def test_outcomes_carry_metadata(self, pair):
        spaces = build_partitioned_spaces(pair.left, pair.right, 2)
        merged, outcomes = run_partitions_parallel(
            spaces, LinkSet(), pair.ground_truth,
            AlexConfig(episode_size=10, seed=5),
            episode_size=10, max_episodes=3, max_workers=1,
        )
        assert {outcome.name for outcome in outcomes} == {"partition-0", "partition-1"}
        for outcome in outcomes:
            assert outcome.episodes_run <= 3
            assert outcome.elapsed_seconds >= 0.0

    def test_empty_spaces_rejected(self, pair):
        with pytest.raises(ConfigError):
            run_partitions_parallel(
                [], LinkSet(), pair.ground_truth,
                AlexConfig(episode_size=10), episode_size=10, max_episodes=1,
            )
