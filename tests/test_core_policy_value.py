"""Unit tests for the policy, action-value table, and episode bookkeeping."""

import random

import pytest

from repro.core import ActionValueTable, Episode, EpsilonGreedyPolicy, StateAction
from repro.core.state import ExplorationAction, available_actions
from repro.errors import PolicyError
from repro.features.feature_set import FeatureSet
from repro.links import Link
from repro.rdf.terms import URIRef


def key(a: str, b: str):
    return (URIRef(f"http://a/ont/{a}"), URIRef(f"http://b/ont/{b}"))


def link(n: int) -> Link:
    return Link(URIRef(f"http://a/res/e{n}"), URIRef(f"http://b/res/e{n}"))


FEATURES = [key("label", "name"), key("birth", "born"), key("type", "type")]


class TestEpsilonGreedyPolicy:
    def test_uniform_before_improvement(self):
        policy = EpsilonGreedyPolicy(0.1)
        probabilities = policy.action_probabilities(link(1), FEATURES)
        assert all(p == pytest.approx(1 / 3) for p in probabilities.values())
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_epsilon_greedy_after_improvement(self):
        policy = EpsilonGreedyPolicy(0.1)
        policy.improve(link(1), FEATURES[0])
        probabilities = policy.action_probabilities(link(1), FEATURES)
        assert probabilities[FEATURES[0]] == pytest.approx(1 - 0.1 + 0.1 / 3)
        assert probabilities[FEATURES[1]] == pytest.approx(0.1 / 3)
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_all_actions_keep_nonzero_probability(self):
        policy = EpsilonGreedyPolicy(0.05)
        policy.improve(link(1), FEATURES[2])
        for probability in policy.action_probabilities(link(1), FEATURES).values():
            assert probability > 0.0

    def test_choose_respects_greedy_mostly(self):
        policy = EpsilonGreedyPolicy(0.1)
        policy.improve(link(1), FEATURES[1])
        rng = random.Random(0)
        choices = [policy.choose(link(1), FEATURES, rng) for _ in range(1000)]
        greedy_share = choices.count(FEATURES[1]) / len(choices)
        assert greedy_share > 0.85

    def test_choose_uniform_for_unknown_state(self):
        policy = EpsilonGreedyPolicy(0.1)
        rng = random.Random(0)
        choices = {policy.choose(link(9), FEATURES, rng) for _ in range(100)}
        assert choices == set(FEATURES)

    def test_stale_greedy_action_ignored(self):
        policy = EpsilonGreedyPolicy(0.1)
        policy.improve(link(1), key("gone", "gone"))
        rng = random.Random(0)
        # the remembered greedy action is not among the available ones
        choice = policy.choose(link(1), FEATURES, rng)
        assert choice in FEATURES

    def test_empty_actions_raise(self):
        policy = EpsilonGreedyPolicy(0.1)
        with pytest.raises(PolicyError):
            policy.choose(link(1), [], random.Random(0))

    def test_invalid_epsilon(self):
        for eps in (0.0, 1.0, -0.5):
            with pytest.raises(PolicyError):
                EpsilonGreedyPolicy(eps)


class TestActionValueTable:
    def test_q_undefined_initially(self):
        table = ActionValueTable()
        assert table.q(StateAction(link(1), FEATURES[0])) is None

    def test_q_is_average_of_returns(self):
        table = ActionValueTable()
        sa = StateAction(link(1), FEATURES[0])
        table.record_return(sa, 1.0)
        table.record_return(sa, -1.0)
        table.record_return(sa, 1.0)
        assert table.q(sa) == pytest.approx(1 / 3)
        assert table.returns(sa) == [1.0, -1.0, 1.0]

    def test_greedy_action_argmax(self):
        table = ActionValueTable()
        table.record_return(StateAction(link(1), FEATURES[0]), 1.0)
        table.record_return(StateAction(link(1), FEATURES[1]), -1.0)
        assert table.greedy_action(link(1), FEATURES) == FEATURES[0]

    def test_greedy_action_none_when_no_values(self):
        table = ActionValueTable()
        assert table.greedy_action(link(1), FEATURES) is None

    def test_greedy_ignores_other_states(self):
        table = ActionValueTable()
        table.record_return(StateAction(link(2), FEATURES[0]), 5.0)
        assert table.greedy_action(link(1), FEATURES) is None

    def test_tie_breaks_deterministically(self):
        table = ActionValueTable()
        table.record_return(StateAction(link(1), FEATURES[0]), 1.0)
        table.record_return(StateAction(link(1), FEATURES[1]), 1.0)
        first = table.greedy_action(link(1), FEATURES)
        assert first == table.greedy_action(link(1), FEATURES)


class TestEpisode:
    def test_first_visit_semantics(self):
        episode = Episode(index=1)
        assert episode.first_visit(link(1)) is True
        assert episode.first_visit(link(1)) is False
        assert episode.first_visit(link(2)) is True

    def test_feedback_counters(self):
        episode = Episode(index=1)
        episode.record_feedback(True)
        episode.record_feedback(False)
        episode.record_feedback(False)
        assert episode.stats.positive_count == 1
        assert episode.stats.negative_count == 2
        assert episode.stats.negative_fraction == pytest.approx(2 / 3)

    def test_negative_fraction_empty(self):
        assert Episode(index=1).stats.negative_fraction == 0.0

    def test_acted_states(self):
        episode = Episode(index=1)
        episode.record_action(link(1))
        episode.record_action(link(1))
        episode.record_action(link(2))
        assert episode.acted_states() == {link(1), link(2)}


class TestStateHelpers:
    def test_available_actions_sorted(self):
        fs = FeatureSet({FEATURES[1]: 0.5, FEATURES[0]: 0.9})
        actions = available_actions(fs)
        assert actions == sorted(actions, key=lambda k: (k[0].value, k[1].value))

    def test_exploration_action_bounds(self):
        action = ExplorationAction(FEATURES[0], center=0.98, step=0.05)
        assert action.high == 1.0
        assert action.low == pytest.approx(0.93)
        low_action = ExplorationAction(FEATURES[0], center=0.02, step=0.05)
        assert low_action.low == 0.0
