"""Tests for link confidence reporting and VoID descriptions."""

import pytest

from repro.core import AlexConfig, AlexEngine
from repro.core.confidence import (
    confidence_report,
    export_confidence_csv,
    link_confidence,
)
from repro.features import FeatureSpace
from repro.feedback import FeedbackSession, GroundTruthOracle
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity
from repro.rdf.graph import Graph
from repro.rdf.namespaces import OWL_SAMEAS
from repro.rdf.terms import Literal, URIRef
from repro.rdf.void import VOID, export_with_void, void_description, void_linkset

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")


def link(i: int, j: int) -> Link:
    return Link(URIRef(f"http://a/res/e{i}"), URIRef(f"http://b/res/e{j}"))


@pytest.fixture()
def engine():
    names = ["Alpha Jones", "Bravo Smith", "Carol Kent", "Delta Reed", "Echo Moss"]
    space = FeatureSpace(theta=0.3)
    for i, left_name in enumerate(names):
        left = Entity(URIRef(f"http://a/res/e{i}"), {LEFT_NAME: (Literal(left_name),)})
        for j, right_name in enumerate(names):
            right = Entity(URIRef(f"http://b/res/e{j}"), {RIGHT_NAME: (Literal(right_name),)})
            space.add_pair(left, right)
    space.freeze()
    initial = LinkSet()
    initial.add(link(0, 0), score=0.93)
    engine = AlexEngine(space, initial, AlexConfig(episode_size=15, seed=4))
    truth = LinkSet([link(i, i) for i in range(5)])
    session = FeedbackSession(engine, GroundTruthOracle(truth), seed=4)
    session.run(episode_size=15, max_episodes=6)
    return engine


class TestLinkConfidence:
    def test_approved_links_score_high(self, engine):
        report = confidence_report(engine)
        approved = [entry for entry in report if entry.positives > 0]
        assert approved
        for entry in approved:
            assert entry.confidence > 0.6

    def test_report_sorted_desc(self, engine):
        report = confidence_report(engine)
        confidences = [entry.confidence for entry in report]
        assert confidences == sorted(confidences, reverse=True)

    def test_linker_prior_used(self, engine):
        entry = link_confidence(engine, link(0, 0))
        assert entry.source == "linker"
        assert entry.prior == pytest.approx(0.93)

    def test_unjudged_linker_link_keeps_score(self):
        space = FeatureSpace(theta=0.3)
        space.freeze()
        initial = LinkSet()
        initial.add(link(9, 9), score=0.8)
        engine = AlexEngine(space, initial, AlexConfig(episode_size=5))
        entry = link_confidence(engine, link(9, 9))
        assert entry.confidence == pytest.approx(0.8)
        assert entry.positives == 0

    def test_csv_export(self, engine):
        text = export_confidence_csv(engine)
        lines = text.strip().splitlines()
        assert lines[0].startswith("left,right,confidence")
        assert len(lines) == len(engine.candidates) + 1


class TestVoid:
    @pytest.fixture()
    def graph(self):
        g = Graph(name="testset")
        from repro.rdf.triples import Triple

        g.add(Triple(URIRef("http://x/a"), URIRef("http://x/p"), Literal("v")))
        g.add(Triple(URIRef("http://x/b"), URIRef("http://x/q"), URIRef("http://x/a")))
        return g

    def test_dataset_description(self, graph):
        description = void_description(graph, "http://example.org/ds")
        subject = URIRef("http://example.org/ds")
        assert description.value(subject, VOID.triples) == Literal(
            "2", datatype="http://www.w3.org/2001/XMLSchema#integer"
        )
        assert description.value(subject, VOID.properties).lexical == "2"

    def test_linkset_description(self):
        links = LinkSet([link(0, 0), link(1, 1)], name="mylinks")
        description = void_linkset(
            links, "http://example.org/ls", "http://example.org/a", "http://example.org/b"
        )
        subject = URIRef("http://example.org/ls")
        assert description.value(subject, VOID.linkPredicate) == OWL_SAMEAS
        assert description.value(subject, VOID.triples).lexical == "2"

    def test_export_with_void_combines(self):
        links = LinkSet([link(0, 0)])
        combined = export_with_void(
            links, "http://example.org", "http://example.org/a", "http://example.org/b"
        )
        assert combined.count(predicate=OWL_SAMEAS) == 1
        assert combined.count(predicate=VOID.linkPredicate) == 1
