"""Thread-safety regression tests for the obs subsystem and the SPARQL
plan cache — the races the ALEX-C04x concurrency analyzer flagged, pinned
behaviorally so they cannot silently come back.

A note on scope: :meth:`Counter.inc` is deliberately lock-free (``self.value
+= amount`` is not atomic across bytecodes), so these tests never hammer
one instrument from many threads and then assert an exact value. What *is*
guarded — and what these tests exercise — is the registry's instrument
table, the tracer's ring buffer, and the plan cache: the structures
``locks.json`` inventories. Each test shrinks the interpreter's thread
switch interval so the races it guards against actually interleave.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro import obs
from repro.obs.registry import Registry, counter_total
from repro.obs.trace import TRACE_SCHEMA, Tracer

THREADS = 8
ROUNDS = 200


@pytest.fixture(autouse=True)
def _tight_thread_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _run_threads(workers):
    errors = []

    def guard(work):
        def body():
            try:
                work()
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)
        return body

    threads = [threading.Thread(target=guard(work)) for work in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == [], errors


# --------------------------------------------------------------------- #
# Registry: instrument table growth vs snapshot()
# --------------------------------------------------------------------- #


def test_snapshot_is_safe_while_instruments_are_created():
    """snapshot() copies the instrument dict under the lock: concurrent
    get-or-create must not blow up its iteration (pre-fix this raised
    'dictionary changed size during iteration') and every update written
    before the last join must be visible afterwards."""
    registry = Registry("stress")
    stop = threading.Event()

    def writer(index):
        def work():
            for round_ in range(ROUNDS):
                registry.counter("stress.ops", worker=index, round=round_ % 10).inc()
        return work

    def reader():
        while not stop.is_set():
            snapshot = registry.snapshot()
            assert snapshot["format_version"] == 1

    reader_thread = threading.Thread(target=reader)
    reader_thread.start()
    try:
        _run_threads([writer(index) for index in range(THREADS)])
    finally:
        stop.set()
        reader_thread.join()
    assert counter_total(registry.snapshot(), "stress.ops") == THREADS * ROUNDS


def test_get_or_create_returns_one_instrument_per_key():
    """All racing creators of the same (name, labels) key must converge on
    a single instrument object — the double-checked slow path re-checks
    under the lock."""
    registry = Registry("identity")
    seen = []
    barrier = threading.Barrier(THREADS)

    def creator():
        barrier.wait()
        seen.append(registry.counter("one.key", kind="shared"))

    _run_threads([creator] * THREADS)
    assert len(seen) == THREADS
    assert all(instrument is seen[0] for instrument in seen)


def test_merge_of_worker_snapshots_loses_nothing():
    """Per-worker registries merged into one parent (the multiprocessing
    shape) preserve every count."""
    workers = [Registry(f"w{index}") for index in range(THREADS)]

    def incrementer(registry, index):
        def work():
            for _ in range(ROUNDS):
                registry.counter("merged.ops", worker=index).inc()
        return work

    _run_threads([incrementer(reg, i) for i, reg in enumerate(workers)])
    parent = Registry("parent")
    for registry in workers:
        parent.merge(registry.snapshot())
    assert counter_total(parent.snapshot(), "merged.ops") == THREADS * ROUNDS


def test_snapshot_is_safe_while_tracer_is_swapped():
    """snapshot() reads the tracer slot exactly once: a concurrent
    install/uninstall toggling the slot must never make it crash between
    the None-check and the payload call."""
    registry = Registry("toggle")
    registry.counter("toggle.ops").inc()
    stop = threading.Event()

    def toggler():
        while not stop.is_set():
            tracer = Tracer(capacity=4)
            tracer.event("toggle.event")
            registry.tracer = tracer
            registry.tracer = None

    toggle_thread = threading.Thread(target=toggler)
    toggle_thread.start()
    try:
        for _ in range(ROUNDS):
            snapshot = registry.snapshot()
            events = snapshot.get("events")
            assert events is None or events["schema"] == TRACE_SCHEMA
    finally:
        stop.set()
        toggle_thread.join()


# --------------------------------------------------------------------- #
# Tracer: ring buffer, absorb, payload coherence
# --------------------------------------------------------------------- #


def test_ring_buffer_stays_bounded_under_concurrent_appends():
    """Concurrent trace-less events against a tiny ring: nothing is lost
    silently (len + dropped == total) and compaction keeps the backing
    list bounded at ~2x capacity."""
    capacity = 64
    tracer = Tracer(capacity=capacity)

    def emitter(index):
        def work():
            for round_ in range(ROUNDS):
                tracer.event("ring.append", worker=index, round=round_)
        return work

    _run_threads([emitter(index) for index in range(THREADS)])
    total = THREADS * ROUNDS
    assert len(tracer) == capacity
    assert tracer.dropped == total - capacity
    assert tracer._start <= tracer.capacity
    assert len(tracer._records) <= 2 * capacity


def test_absorb_accumulates_dropped_counts_atomically():
    """The dropped tally folds under the tracer lock: N racing absorbs of
    a payload carrying dropped=1 must land exactly N (pre-fix this was a
    lock-free read-modify-write that lost updates)."""
    tracer = Tracer(capacity=8, enabled=False)
    payload = {"schema": TRACE_SCHEMA, "dropped": 1, "records": []}

    def absorber():
        for _ in range(ROUNDS):
            tracer.absorb(payload)

    _run_threads([absorber] * THREADS)
    assert tracer.dropped == THREADS * ROUNDS


def test_payload_is_coherent_under_concurrent_appends():
    """payload() assembles records and the dropped count in one locked
    section, so every observed payload satisfies the conservation
    invariant dropped + buffered <= appended-so-far, with equality once
    the writers join."""
    capacity = 32
    tracer = Tracer(capacity=capacity)
    total = THREADS * ROUNDS
    stop = threading.Event()

    def emitter():
        for _ in range(ROUNDS):
            tracer.event("payload.append")

    def auditor():
        while not stop.is_set():
            payload = tracer.payload()
            assert payload["schema"] == TRACE_SCHEMA
            assert len(payload["records"]) <= capacity
            assert payload["dropped"] + len(payload["records"]) <= total

    audit_thread = threading.Thread(target=auditor)
    audit_thread.start()
    try:
        _run_threads([emitter] * THREADS)
    finally:
        stop.set()
        audit_thread.join()
    final = tracer.payload()
    assert final["dropped"] + len(final["records"]) == total


# --------------------------------------------------------------------- #
# SPARQL plan cache: one prepared object per text, no cross-lock holds
# --------------------------------------------------------------------- #


def test_concurrent_prepare_converges_on_one_plan():
    """Racing prepare() calls for the same text all get the *same*
    PreparedQuery (the join-order memo must not split), and the hit path
    bumps its counter outside _cache_lock so the cache lock is never held
    while the obs registry lock is taken."""
    from repro.sparql.prepared import clear_plan_cache, prepare

    text = "SELECT ?s WHERE { ?s ?p ?o }"
    clear_plan_cache()
    try:
        with obs.use_registry():
            results = []
            barrier = threading.Barrier(THREADS)

            def preparer():
                barrier.wait()
                for _ in range(ROUNDS // 10):
                    results.append(prepare(text))

            _run_threads([preparer] * THREADS)
            assert len(results) == THREADS * (ROUNDS // 10)
            assert all(prepared is results[0] for prepared in results)
    finally:
        clear_plan_cache()
