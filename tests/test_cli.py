"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDatasets:
    def test_list(self, capsys):
        code, out, _ = run_cli(capsys, "datasets", "list")
        assert code == 0
        assert "dbpedia_nytimes" in out
        assert "ground truth" in out

    def test_generate(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "datasets", "generate", "opencyc_nba_nytimes", "--out", str(tmp_path)
        )
        assert code == 0
        files = os.listdir(tmp_path)
        assert {
            "opencyc_nba_nytimes_left.nt",
            "opencyc_nba_nytimes_right.nt",
            "opencyc_nba_nytimes_truth.nt",
        } <= set(files)

    def test_generate_unknown_key(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "datasets", "generate", "nope", "--out", str(tmp_path))
        assert code == 1
        assert "unknown dataset pair" in err


class TestLinkAndQuery:
    @pytest.fixture()
    def generated(self, capsys, tmp_path):
        run_cli(capsys, "datasets", "generate", "opencyc_nba_nytimes", "--out", str(tmp_path))
        return (
            str(tmp_path / "opencyc_nba_nytimes_left.nt"),
            str(tmp_path / "opencyc_nba_nytimes_right.nt"),
        )

    def test_link_prints_links(self, capsys, generated):
        left, right = generated
        code, out, _ = run_cli(capsys, "link", left, right, "--threshold", "0.8")
        assert code == 0
        assert "links above threshold" in out
        assert "sameAs" in out

    def test_link_writes_file(self, capsys, generated, tmp_path):
        left, right = generated
        out_file = str(tmp_path / "links.nt")
        code, out, _ = run_cli(capsys, "link", left, right, "--out", out_file)
        assert code == 0
        assert os.path.exists(out_file)

    def test_link_missing_file(self, capsys):
        code, _, err = run_cli(capsys, "link", "/nope/a.nt", "/nope/b.nt")
        assert code == 1
        assert "error" in err

    def test_query_select(self, capsys, generated):
        left, _ = generated
        code, out, _ = run_cli(
            capsys, "query", left, "SELECT ?s WHERE { ?s ?p ?o } LIMIT 3"
        )
        assert code == 0
        assert out.startswith("?s")
        assert len(out.strip().splitlines()) == 4  # header + 3 rows

    def test_query_ask(self, capsys, generated):
        left, _ = generated
        code, out, _ = run_cli(capsys, "query", left, "ASK { ?s ?p ?o }")
        assert code == 0
        assert out.strip() == "yes"

    def test_query_construct(self, capsys, generated):
        left, _ = generated
        code, out, _ = run_cli(
            capsys, "query", left,
            "CONSTRUCT { ?s <http://x/p> ?o } WHERE { ?s <http://x/none> ?o }",
        )
        assert code == 0
        assert out == ""

    def test_query_aggregate(self, capsys, generated):
        left, _ = generated
        code, out, _ = run_cli(
            capsys, "query", left, "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"
        )
        assert code == 0
        assert int(out.strip().splitlines()[1]) > 0


class TestLintQuery:
    def test_clean_query_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, "lint-query", "SELECT ?s WHERE { ?s ?p ?o }")
        assert code == 0
        assert "0 error(s)" in out

    def test_error_diagnostics_exit_one(self, capsys):
        code, out, _ = run_cli(capsys, "lint-query", "SELECT ?name WHERE { ?s ?p ?o }")
        assert code == 1
        assert "ALEX-E001" in out
        assert "1 error(s)" in out

    def test_text_output_has_positions(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint-query", "SELECT * WHERE { ?s <http://x/p> ?o FILTER(1 > 2) }"
        )
        assert code == 1
        assert "1:37: ALEX-E004 error:" in out

    def test_json_output(self, capsys):
        import json

        code, out, _ = run_cli(
            capsys, "lint-query", "--format", "json", "SELECT ?s ?s WHERE { ?s ?p ?o }"
        )
        assert code == 0  # warnings only
        payload = json.loads(out)
        assert payload[0]["code"] == "ALEX-W106"
        assert payload[0]["severity"] == "warning"

    def test_query_from_file(self, capsys, tmp_path):
        query_file = tmp_path / "q.rq"
        query_file.write_text("SELECT ?s WHERE { ?s ?p ?o }")
        code, out, _ = run_cli(capsys, "lint-query", f"@{query_file}")
        assert code == 0

    def test_data_enables_cost_lint(self, capsys, tmp_path):
        data = tmp_path / "d.nt"
        data.write_text(
            "".join(
                f"<http://x/s{i}> <http://x/p> <http://x/o{i}> .\n" for i in range(12)
            )
        )
        code, out, _ = run_cli(
            capsys, "lint-query", "--data", str(data),
            "SELECT * WHERE { ?s <http://x/p> ?o }",
        )
        assert code == 0
        assert "ALEX-I201" in out

    def test_syntax_error_is_reported(self, capsys):
        code, _, err = run_cli(capsys, "lint-query", "SELECT WHERE {")
        assert code == 1
        assert "error" in err

    def test_strict_query_rejects_errors(self, capsys, tmp_path):
        data = tmp_path / "d.nt"
        data.write_text("<http://x/s> <http://x/p> <http://x/o> .\n")
        code, _, err = run_cli(
            capsys, "query", "--strict", str(data), "SELECT ?name WHERE { ?s ?p ?o }"
        )
        assert code == 1
        assert "ALEX-E001" in err

    def test_default_query_still_runs_bad_projection(self, capsys, tmp_path):
        data = tmp_path / "d.nt"
        data.write_text("<http://x/s> <http://x/p> <http://x/o> .\n")
        code, out, _ = run_cli(
            capsys, "query", str(data), "SELECT ?name WHERE { ?s ?p ?o }"
        )
        assert code == 0


class TestFailOn:
    def test_lint_query_fail_on_warning(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint-query", "--fail-on", "warning", "SELECT ?s ?s WHERE { ?s ?p ?o }"
        )
        assert code == 1
        assert "ALEX-W106" in out

    def test_lint_query_default_passes_warnings(self, capsys):
        code, _, _ = run_cli(capsys, "lint-query", "SELECT ?s ?s WHERE { ?s ?p ?o }")
        assert code == 0

    def test_lint_query_fail_on_info(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint-query", "--fail-on", "info", "SELECT * WHERE { ?s ?p ?o }"
        )
        assert code == 1
        assert "ALEX-I201" in out


class TestLintData:
    @pytest.fixture()
    def bad_nt(self, tmp_path):
        data = tmp_path / "bad.nt"
        data.write_text(
            '<http://x/a> <http://x/age> '
            '"abc"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
            "<http://x/b> <http://x/p> <http://x/c> .\n"
            '<http://x/d> <http://x/p> "mixed" .\n'
        )
        return str(data)

    @pytest.fixture()
    def clean_nt(self, tmp_path):
        data = tmp_path / "clean.nt"
        data.write_text('<http://x/a> <http://x/name> "Alpha" .\n')
        return str(data)

    def test_clean_file_exits_zero(self, capsys, clean_nt):
        code, out, _ = run_cli(capsys, "lint-data", clean_nt)
        assert code == 0
        assert "0 error(s)" in out

    def test_errors_exit_one(self, capsys, bad_nt):
        code, out, _ = run_cli(capsys, "lint-data", bad_nt)
        assert code == 1
        assert "ALEX-D101" in out
        assert "ALEX-D201" in out  # reported but not fatal by default

    def test_json_output(self, capsys, bad_nt):
        import json

        code, out, _ = run_cli(capsys, "lint-data", "--format", "json", bad_nt)
        assert code == 1
        payload = json.loads(out)
        assert payload[0]["code"] == "ALEX-D101"
        assert payload[0]["severity"] == "error"
        assert "subject" in payload[0]

    def test_strict_fails_on_warnings(self, capsys, tmp_path):
        data = tmp_path / "warn.nt"
        data.write_text(
            "<http://x/b> <http://x/p> <http://x/c> .\n"
            '<http://x/d> <http://x/p> "mixed" .\n'
        )
        code, _, _ = run_cli(capsys, "lint-data", str(data))
        assert code == 0
        code, out, _ = run_cli(capsys, "lint-data", "--strict", str(data))
        assert code == 1
        assert "ALEX-D201" in out

    def test_links_tier(self, capsys, tmp_path, clean_nt):
        links = tmp_path / "links.nt"
        links.write_text(
            "<http://x/a> <http://www.w3.org/2002/07/owl#sameAs> <http://x/ghost> .\n"
        )
        code, out, _ = run_cli(capsys, "lint-data", clean_nt, clean_nt, "--links", str(links))
        assert code == 1
        assert "ALEX-D304" in out

    def test_generated_bundle_is_clean(self, capsys, tmp_path):
        run_cli(capsys, "datasets", "generate", "opencyc_nba_nytimes", "--out", str(tmp_path))
        left = str(tmp_path / "opencyc_nba_nytimes_left.nt")
        right = str(tmp_path / "opencyc_nba_nytimes_right.nt")
        truth = str(tmp_path / "opencyc_nba_nytimes_truth.nt")
        code, out, _ = run_cli(capsys, "lint-data", left, right, "--links", truth)
        assert code == 0
        assert "0 error(s)" in out

    def test_too_many_files(self, capsys, clean_nt):
        code, _, err = run_cli(capsys, "lint-data", clean_nt, clean_nt, clean_nt)
        assert code == 2
        assert "at most two" in err

    def test_nquads_input(self, capsys, tmp_path):
        data = tmp_path / "d.nq"
        data.write_text(
            '<http://x/a> <http://x/age> '
            '"nope"^^<http://www.w3.org/2001/XMLSchema#integer> <http://x/g> .\n'
        )
        code, out, _ = run_cli(capsys, "lint-data", str(data))
        assert code == 1
        assert "ALEX-D101" in out
        assert "[http://x/g]" in out


class TestRunAndFigures:
    def test_run_scenario(self, capsys):
        code, out, _ = run_cli(capsys, "run", "fig4d", "--max-episodes", "5")
        assert code == 0
        assert "scenario fig4d" in out
        assert "episodes:" in out

    def test_run_unknown_scenario(self, capsys):
        code, _, err = run_cli(capsys, "run", "nope")
        assert code == 1

    def test_figures_single(self, capsys):
        code, out, _ = run_cli(capsys, "figures", "table1")
        assert code == 0
        assert "Table 1" in out

    def test_figures_unknown(self, capsys):
        code, _, err = run_cli(capsys, "figures", "fig99")
        assert code == 2
        assert "unknown figure" in err


class TestExplain:
    @pytest.fixture()
    def generated(self, capsys, tmp_path):
        run_cli(capsys, "datasets", "generate", "opencyc_nba_nytimes", "--out", str(tmp_path))
        return str(tmp_path / "opencyc_nba_nytimes_left.nt")

    QUERY = "SELECT ?s ?o WHERE { ?s ?p ?o } LIMIT 3"

    def test_static_explain(self, capsys, generated):
        code, out, _ = run_cli(capsys, "explain", generated, self.QUERY)
        assert code == 0
        assert out.startswith("EXPLAIN\n")
        assert "pattern" in out and "est=" in out
        assert "rows=" not in out

    def test_analyze_prints_rows_and_total(self, capsys, generated):
        code, out, _ = run_cli(capsys, "explain", generated, self.QUERY, "--analyze")
        assert code == 0
        assert out.startswith("EXPLAIN ANALYZE\n")
        assert "rows=" in out and "time=" in out
        assert "total:" in out

    def test_json_format(self, capsys, generated):
        import json

        code, out, _ = run_cli(capsys, "explain", generated, self.QUERY, "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == "repro-plan/1"
        assert payload["analyzed"] is False

    def test_query_from_file(self, capsys, generated, tmp_path):
        query_file = tmp_path / "q.rq"
        query_file.write_text(self.QUERY)
        code, out, _ = run_cli(capsys, "explain", generated, "@" + str(query_file))
        assert code == 0
        assert "EXPLAIN" in out

    def test_missing_data_file(self, capsys):
        code, _, err = run_cli(capsys, "explain", "/nope/x.nt", self.QUERY)
        assert code == 1
        assert "error" in err


class TestTraceCli:
    @pytest.fixture()
    def trace_file(self, capsys, tmp_path):
        run_cli(capsys, "datasets", "generate", "opencyc_nba_nytimes", "--out", str(tmp_path))
        data = str(tmp_path / "opencyc_nba_nytimes_left.nt")
        out_path = str(tmp_path / "trace.jsonl")
        code, out, err = run_cli(
            capsys, "explain", data, "SELECT ?s WHERE { ?s ?p ?o } LIMIT 3",
            "--analyze", "--trace-out", out_path,
        )
        assert code == 0
        assert "wrote" in err
        return out_path

    def test_trace_out_round_trips(self, trace_file):
        from repro.obs.trace import load_jsonl

        payload = load_jsonl(trace_file)
        names = {record["name"] for record in payload["records"]}
        assert "sparql.query.explain" in names
        assert "sparql.operator.eval" in names

    def test_trace_show(self, capsys, trace_file):
        code, out, _ = run_cli(capsys, "trace", "show", trace_file)
        assert code == 0
        assert "trace " in out
        assert "sparql.query.explain" in out

    def test_trace_show_unknown_prefix(self, capsys, trace_file):
        code, out, _ = run_cli(capsys, "trace", "show", trace_file, "--trace", "zzzz")
        assert code == 0
        assert "no trace matching" in out

    def test_trace_summary(self, capsys, trace_file):
        code, out, _ = run_cli(capsys, "trace", "summary", trace_file)
        assert code == 0
        assert "events by type:" in out
        assert "slowest spans" in out

    def test_trace_rejects_non_trace_file(self, capsys, tmp_path):
        junk = tmp_path / "junk.jsonl"
        junk.write_text('{"schema": "nope"}\n')
        code, _, err = run_cli(capsys, "trace", "summary", str(junk))
        assert code == 1
        assert "error" in err


class TestStatsAndRunTracing:
    def test_stats_top_limits_sections(self, capsys, tmp_path):
        snapshot = str(tmp_path / "snap.json")
        code, _, _ = run_cli(capsys, "stats", "--episodes", "1", "--json", snapshot)
        assert code == 0
        code, out, _ = run_cli(capsys, "stats", "--from", snapshot, "--top", "2")
        assert code == 0
        assert "more)" in out  # sections got clipped

    def test_run_trace_out(self, capsys, tmp_path):
        from repro.obs.trace import load_jsonl

        out_path = str(tmp_path / "run-trace.jsonl")
        code, out, _ = run_cli(
            capsys, "run", "fig4d", "--max-episodes", "3", "--trace-out", out_path
        )
        assert code == 0
        assert f"wrote {out_path}" in out
        payload = load_jsonl(out_path)
        names = {record["name"] for record in payload["records"]}
        assert "alex.episode.run" in names
        assert "alex.feature.select" in names


class TestHealthCli:
    def test_health_prints_json_and_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, "health", "--episodes", "1")
        assert code == 0
        payload = json.loads(out)
        assert payload["status"] in ("ok", "degraded")
        assert payload["engine"]["closed"] is False
        assert "plan_cache" in payload["caches"]
        assert "left" in payload["dictionaries"]


class TestSlowlogCli:
    def test_slowlog_renders_entries(self, capsys):
        code, out, _ = run_cli(capsys, "slowlog", "--episodes", "1")
        assert code == 0
        assert "slowlog" in out
        assert "episode" in out  # feedback episodes always record

    def test_slowlog_json_flush(self, capsys, tmp_path):
        target = str(tmp_path / "slow.json")
        code, out, _ = run_cli(
            capsys, "slowlog", "--episodes", "1", "--json", target
        )
        assert code == 0
        payload = json.loads(open(target).read())
        assert payload["schema"] == "repro-slowlog/1"
        assert payload["entries"]

    def test_slowlog_threshold_filters_everything(self, capsys):
        code, out, _ = run_cli(
            capsys, "slowlog", "--episodes", "1", "--threshold", "3600"
        )
        assert code == 0
        assert "no slow operations" in out


class TestStatsExports:
    def test_prom_out_writes_valid_exposition(self, capsys, tmp_path):
        from repro.obs.export import validate_exposition

        prom = str(tmp_path / "metrics.prom")
        code, out, _ = run_cli(
            capsys, "stats", "--episodes", "1", "--prom-out", prom
        )
        assert code == 0
        text = open(prom).read()
        assert validate_exposition(text) > 0
        assert f"wrote {prom}" in out

    def test_report_out_collects_interval_samples(self, capsys, tmp_path):
        from repro.obs.report import load_report

        report = str(tmp_path / "report.jsonl")
        code, out, _ = run_cli(
            capsys, "stats", "--episodes", "1",
            "--report-out", report, "--report-interval", "0.05",
        )
        assert code == 0
        loaded = load_report(report)
        assert loaded["header"]["schema"] == "repro-report/1"
        assert len(loaded["samples"]) >= 2
        assert f"wrote {report}" in out

    def test_stats_from_report_file(self, capsys, tmp_path):
        report = str(tmp_path / "report.jsonl")
        run_cli(
            capsys, "stats", "--episodes", "1",
            "--report-out", report, "--report-interval", "0.05",
        )
        code, out, _ = run_cli(capsys, "stats", "--from", report)
        assert code == 0
        assert "seq=" in out  # rendered the latest report sample

    def test_watch_from_file_stops_after_iterations(self, capsys, tmp_path):
        snapshot = str(tmp_path / "snap.json")
        run_cli(capsys, "stats", "--episodes", "1", "--json", snapshot)
        code, out, _ = run_cli(
            capsys, "stats", "--from", snapshot,
            "--watch", "0.01", "--iterations", "2",
        )
        assert code == 0
        assert out.count("registry") >= 2  # two renders
