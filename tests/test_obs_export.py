"""Tests for Prometheus text exposition of registry snapshots."""

import math
import random

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import Registry
from repro.obs.export import (
    escape_label_value,
    format_value,
    mangle_name,
    render_prometheus,
    validate_exposition,
)


class TestMangling:
    def test_dotted_name_mangles_with_prefix(self):
        assert mangle_name("sparql.plan_cache.hits", "_total") == (
            "repro_sparql_plan_cache_hits_total"
        )

    def test_plain_name_keeps_shape(self):
        assert mangle_name("alex") == "repro_alex"

    def test_hyphen_becomes_underscore(self):
        assert mangle_name("a-b.c") == "repro_a_b_c"


class TestEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_plain_value_unchanged(self):
        assert escape_label_value("positive") == "positive"

    def test_escaped_values_round_trip_through_validator(self):
        registry = Registry("escapes")
        registry.counter("evil.values", pair='a"b\\c', other="line\nbreak").inc(3)
        text = render_prometheus(registry.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert validate_exposition(text) == 1


class TestFormatValue:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (3, "3"),
            (3.0, "3"),
            (math.inf, "+Inf"),
            (-math.inf, "-Inf"),
            (0.25, "0.25"),
        ],
    )
    def test_values(self, value, expected):
        assert format_value(value) == expected


class TestRenderPrometheus:
    def test_counter_gets_total_suffix_and_help_type(self):
        registry = Registry("t")
        registry.counter("alex.episodes").inc(2)
        text = render_prometheus(registry.snapshot())
        assert "# HELP repro_alex_episodes_total" in text
        assert "# TYPE repro_alex_episodes_total counter" in text
        assert "repro_alex_episodes_total 2" in text

    def test_label_keys_sorted(self):
        registry = Registry("t")
        registry.counter("c.x", zulu="1", alpha="2").inc()
        text = render_prometheus(registry.snapshot())
        assert 'repro_c_x_total{alpha="2",zulu="1"} 1' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = Registry("t")
        histogram = registry.histogram("h.lat", boundaries=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0, 3.0):
            histogram.observe(value)
        text = render_prometheus(registry.snapshot())
        assert 'repro_h_lat_bucket{le="1"} 1' in text
        assert 'repro_h_lat_bucket{le="2"} 2' in text
        assert 'repro_h_lat_bucket{le="+Inf"} 4' in text
        assert "repro_h_lat_sum 8" in text
        assert "repro_h_lat_count 4" in text

    def test_spans_expose_as_counter_pair(self):
        registry = Registry("t")
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        text = render_prometheus(registry.snapshot())
        assert 'repro_span_total{path="outer"} 1' in text
        assert 'repro_span_seconds_total{path="outer/inner"}' in text

    def test_deterministic_for_same_snapshot(self):
        registry = Registry("t")
        registry.counter("a.b", x="1").inc()
        registry.gauge("g.v").set(7)
        snap = registry.snapshot()
        assert render_prometheus(snap) == render_prometheus(snap)

    def test_rejects_unversioned_snapshot(self):
        with pytest.raises(ObsError, match="snapshot version"):
            render_prometheus({"counters": []})

    def test_global_helpers_snapshot_renders(self):
        with obs.use_registry():
            obs.inc("alex.feedback.processed", verdict="positive")
            obs.observe("sparql.query.seconds", 0.01)
            text = render_prometheus(obs.snapshot())
        assert validate_exposition(text) > 0


class TestValidator:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ObsError, match="no TYPE"):
            validate_exposition("repro_x_total 1\n")

    def test_negative_counter_rejected(self):
        text = "# HELP repro_x_total c\n# TYPE repro_x_total counter\nrepro_x_total -1\n"
        with pytest.raises(ObsError, match="counter"):
            validate_exposition(text)

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 5\n"
        )
        with pytest.raises(ObsError, match="cumulative"):
            validate_exposition(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
        )
        with pytest.raises(ObsError, match=r"\+Inf"):
            validate_exposition(text)

    def test_inf_bucket_disagreeing_with_count_rejected(self):
        text = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_count 5\n"
        )
        with pytest.raises(ObsError, match="_count"):
            validate_exposition(text)

    def test_bad_label_syntax_rejected(self):
        text = "# HELP repro_x g\n# TYPE repro_x gauge\nrepro_x{k=v} 1\n"
        with pytest.raises(ObsError):
            validate_exposition(text)

    def test_malformed_type_line_rejected(self):
        with pytest.raises(ObsError, match="malformed"):
            validate_exposition("# TYPE repro_x\n")

    def test_duplicate_type_rejected(self):
        text = (
            "# HELP repro_x g\n# TYPE repro_x gauge\n"
            "# HELP repro_x g\n# TYPE repro_x gauge\nrepro_x 1\n"
        )
        with pytest.raises(ObsError, match="duplicate TYPE"):
            validate_exposition(text)

    def test_minimal_valid_exposition(self):
        assert validate_exposition(
            "# HELP repro_x g\n# TYPE repro_x gauge\nrepro_x 1\n"
        ) == 1


class TestFuzzRenderAlwaysValidates:
    """Property check: any registry's exposition parses under the validator."""

    def test_random_registries_render_valid_expositions(self):
        rng = random.Random(20260807)
        # One kind per name: Prometheus forbids exposing the same name as
        # two kinds, so the fuzz keeps the registry exposable by design.
        names = {
            "alex.links.discovered": "counter",
            "federation.requests": "counter",
            "pool.bytes.shipped": "counter",
            "cache.pressure": "gauge",
            "sparql.query.seconds": "histogram",
        }
        label_values = ["a", 'quo"te', "back\\slash", "new\nline", "plain-1",
                        "ünïcode", ""]
        for round_number in range(25):
            registry = Registry(f"fuzz-{round_number}")
            for _ in range(rng.randint(1, 12)):
                name = rng.choice(sorted(names))
                labels = {
                    f"l{i}": rng.choice(label_values)
                    for i in range(rng.randint(0, 3))
                }
                kind = names[name]
                if kind == "counter":
                    registry.counter(name, **labels).inc(rng.randint(0, 10**6))
                elif kind == "gauge":
                    registry.gauge(name, **labels).set(rng.uniform(-1e6, 1e6))
                else:
                    histogram = registry.histogram(name, **labels)
                    for _ in range(rng.randint(0, 20)):
                        histogram.observe(rng.uniform(0, 100))
            if rng.random() < 0.5:
                with registry.span("work"):
                    pass
            text = render_prometheus(registry.snapshot())
            samples = validate_exposition(text)
            assert samples == sum(
                1 for line in text.splitlines()
                if line and not line.startswith("#")
            )
