"""Plan-cache concurrency: the writer-inventory claim that the plan cache
is the only cross-thread-safe mutable singleton rests on these guarantees:

* the cache never exceeds ``PLAN_CACHE_SIZE`` no matter how many threads
  insert concurrently;
* every ``prepare()`` call counts exactly one ``sparql.plan_cache.hits``
  or ``.misses`` sample — the two counters are coherent with call volume;
* same text -> same ``PreparedQuery`` object even when many threads race
  the parse (the second lock re-checks instead of overwriting, so a
  racing parse is discarded, never handed out — no duplicate-compilation
  split of the join-order memo).
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.sparql.prepared import (
    PLAN_CACHE_SIZE,
    clear_plan_cache,
    prepare,
)

QUERY_TEMPLATE = (
    "SELECT ?s ?o WHERE {{ ?s <http://example.org/p{index}> ?o }}"
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _counter_total(snapshot: dict, name: str) -> int:
    return sum(
        int(entry["value"])
        for entry in snapshot.get("counters", [])
        if entry["name"] == name
    )


def _hammer(texts: list[str], threads: int, rounds: int):
    """Call prepare() from ``threads`` threads, each walking every text
    ``rounds`` times (staggered start), collecting per-text results."""
    results: list[list] = [[] for _ in range(threads)]
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def worker(slot: int) -> None:
        try:
            barrier.wait()
            for round_index in range(rounds):
                # stagger so threads collide on different texts each round
                for offset in range(len(texts)):
                    text = texts[(slot + round_index + offset) % len(texts)]
                    results[slot].append((text, prepare(text)))
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    pool = [threading.Thread(target=worker, args=(slot,)) for slot in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, f"worker raised: {errors[0]!r}"
    return [entry for slot in results for entry in slot]


def test_same_text_yields_same_object_under_race():
    """No duplicate compilation survives: every thread gets the identical
    PreparedQuery instance per text (fewer texts than the cache bound, so
    eviction cannot split identity)."""
    texts = [QUERY_TEMPLATE.format(index=i) for i in range(8)]
    calls = _hammer(texts, threads=8, rounds=5)
    by_text: dict[str, set[int]] = {}
    for text, prepared in calls:
        by_text.setdefault(text, set()).add(id(prepared))
    assert set(by_text) == set(texts)
    for text, identities in by_text.items():
        assert len(identities) == 1, (
            f"{len(identities)} distinct PreparedQuery objects handed out "
            f"for {text!r} — duplicate compilation race"
        )


def test_cache_size_bound_holds_under_concurrent_inserts():
    """More distinct texts than PLAN_CACHE_SIZE, inserted from many
    threads: the LRU bound must hold at the end (and the cache must still
    serve objects)."""
    from repro.sparql import prepared as module

    texts = [QUERY_TEMPLATE.format(index=i) for i in range(PLAN_CACHE_SIZE + 40)]
    _hammer(texts, threads=6, rounds=2)
    with module._cache_lock:
        size = len(module._plan_cache)
    assert size <= PLAN_CACHE_SIZE
    assert size > 0


def test_hit_miss_counters_are_coherent_with_call_volume():
    """hits + misses == number of prepare() calls, misses >= distinct
    texts (each text parses at least once), and with a single thread the
    counts are exact."""
    texts = [QUERY_TEMPLATE.format(index=i) for i in range(6)]
    threads, rounds = 5, 4
    with obs.use_registry() as registry:
        calls = _hammer(texts, threads=threads, rounds=rounds)
        snapshot = registry.snapshot()
    hits = _counter_total(snapshot, "sparql.plan_cache.hits")
    misses = _counter_total(snapshot, "sparql.plan_cache.misses")
    assert len(calls) == threads * rounds * len(texts)
    assert hits + misses == len(calls)
    assert misses >= len(texts)
    # a racing thread may count a miss yet receive the winner's object, so
    # misses can exceed the distinct-text count — but never the thread
    # fan-out worst case of everyone missing the first round
    assert misses <= threads * len(texts)


def test_hit_miss_counters_exact_single_threaded():
    texts = [QUERY_TEMPLATE.format(index=i) for i in range(4)]
    with obs.use_registry() as registry:
        for _ in range(3):
            for text in texts:
                prepare(text)
        snapshot = registry.snapshot()
    assert _counter_total(snapshot, "sparql.plan_cache.misses") == len(texts)
    assert _counter_total(snapshot, "sparql.plan_cache.hits") == 2 * len(texts)
