"""Tests for the RDF data validator (``repro.rdf.validate``).

Every ALEX-D* diagnostic code is covered by at least one test asserting the
code, the severity, and the located subject (term, triple, or link), per the
code table in ``docs/diagnostics.md``.
"""

import pytest

from repro import obs
from repro.errors import DataValidationError
from repro.links import Link, LinkSet
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Literal, URIRef
from repro.rdf.triples import Triple
from repro.rdf.validate import (
    CODES,
    DataDiagnostic,
    check_graph,
    check_links,
    validate_dataset,
    validate_graph,
    validate_links,
    validate_triples,
)

EX = "http://ex/"
XSD = "http://www.w3.org/2001/XMLSchema#"


def uri(name):
    return URIRef(EX + name)


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


def only(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, f"expected {code} in {codes_of(diagnostics)}"
    return found[0]


def clean_graph():
    graph = Graph(name="clean")
    graph.add(Triple(uri("a"), uri("p"), Literal("x")))
    graph.add(Triple(uri("b"), uri("p"), Literal("y")))
    return graph


class TestCodeTable:
    def test_code_table_is_consistent(self):
        for code, (severity, summary) in CODES.items():
            assert code.startswith("ALEX-D")
            assert severity in ("error", "warning", "info")
            assert summary

    def test_at_least_twelve_codes(self):
        assert len(CODES) >= 12

    def test_clean_graph_has_no_diagnostics(self):
        assert validate_graph(clean_graph()) == []


class TestTermTier:
    @pytest.mark.parametrize(
        "lexical,datatype",
        [
            ("abc", XSD + "integer"),
            ("1.2.3", XSD + "decimal"),
            ("1e", XSD + "double"),
            ("yes", XSD + "boolean"),
            ("2020-13-40", XSD + "date"),
            ("2020-01-01T99:00:00", XSD + "dateTime"),
            ("84", XSD + "gYear"),
        ],
    )
    def test_d101_ill_typed_literal(self, lexical, datatype):
        graph = Graph()
        bad = Literal(lexical, datatype=datatype)
        graph.add(Triple(uri("a"), uri("p"), bad))
        diagnostic = only(validate_graph(graph), "ALEX-D101")
        assert diagnostic.severity == "error"
        assert diagnostic.subject == bad.n3()

    @pytest.mark.parametrize(
        "lexical,datatype",
        [
            ("-42", XSD + "integer"),
            ("3.14", XSD + "decimal"),
            ("6.02e23", XSD + "double"),
            ("true", XSD + "boolean"),
            ("2020-02-29", XSD + "date"),
            ("2020-01-01T12:30:00", XSD + "dateTime"),
            ("1984", XSD + "gYear"),
            ("anything", XSD + "string"),
            ("opaque", "http://other/datatype"),
        ],
    )
    def test_d101_valid_literals_pass(self, lexical, datatype):
        graph = Graph()
        graph.add(Triple(uri("a"), uri("p"), Literal(lexical, datatype=datatype)))
        assert "ALEX-D101" not in codes_of(validate_graph(graph))

    def test_d102_malformed_language_tag(self):
        graph = Graph()
        bad = Literal("hello", language="unreasonablylong")
        graph.add(Triple(uri("a"), uri("p"), bad))
        diagnostic = only(validate_graph(graph), "ALEX-D102")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == bad.n3()

    def test_d102_good_tags_pass(self):
        graph = Graph()
        for tag in ("en", "en-US", "zh-Hant-TW"):
            graph.add(Triple(uri("a"), uri("p"), Literal("hello", language=tag)))
        assert "ALEX-D102" not in codes_of(validate_graph(graph))

    def test_d103_relative_iri(self):
        graph = Graph()
        relative = URIRef("entities/a")
        graph.add(Triple(relative, uri("p"), Literal("x")))
        diagnostic = only(validate_graph(graph), "ALEX-D103")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == relative.n3()

    def test_d103_absolute_iris_pass(self):
        graph = Graph()
        graph.add(Triple(uri("a"), uri("p"), URIRef("urn:isbn:0451450523")))
        assert "ALEX-D103" not in codes_of(validate_graph(graph))

    def test_d104_literal_subject_in_raw_triples(self):
        bad = Triple(Literal("oops"), uri("p"), uri("a"))  # bypasses Triple.create
        diagnostic = only(validate_triples([bad]), "ALEX-D104")
        assert diagnostic.severity == "error"
        assert diagnostic.subject == bad.n3()

    def test_d105_empty_local_name(self):
        graph = Graph()
        stub = URIRef("http://ex/ontology/")
        graph.add(Triple(uri("a"), stub, Literal("x")))
        diagnostic = only(validate_graph(graph), "ALEX-D105")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == stub.n3()

    def test_term_diagnostics_deduplicated(self):
        graph = Graph()
        relative = URIRef("no-scheme")
        graph.add(Triple(relative, uri("p"), Literal("x")))
        graph.add(Triple(relative, uri("q"), Literal("y")))
        diagnostics = [d for d in validate_graph(graph) if d.code == "ALEX-D103"]
        assert len(diagnostics) == 1


class TestGraphTier:
    def test_d201_mixed_object_kinds(self):
        graph = Graph()
        graph.add(Triple(uri("a"), uri("p"), Literal("x")))
        graph.add(Triple(uri("b"), uri("p"), uri("c")))
        diagnostic = only(validate_graph(graph), "ALEX-D201")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == uri("p").n3()

    def test_d202_functional_predicate_violation(self):
        graph = Graph()
        for index in range(9):
            graph.add(Triple(uri(f"s{index}"), uri("code"), Literal(str(index))))
        graph.add(Triple(uri("dup"), uri("code"), Literal("a")))
        graph.add(Triple(uri("dup"), uri("code"), Literal("b")))
        diagnostic = only(validate_graph(graph), "ALEX-D202")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == uri("code").n3()
        assert uri("dup").n3() in diagnostic.message

    def test_d202_genuinely_multivalued_predicates_pass(self):
        graph = Graph()
        for index in range(6):
            graph.add(Triple(uri(f"s{index}"), uri("tag"), Literal(f"x{index}")))
            graph.add(Triple(uri(f"s{index}"), uri("tag"), Literal(f"y{index}")))
        assert "ALEX-D202" not in codes_of(validate_graph(graph))

    def test_d203_orphan_bnode(self):
        graph = Graph()
        orphan = BNode("orphan")
        graph.add(Triple(uri("a"), uri("p"), orphan))
        diagnostic = only(validate_graph(graph), "ALEX-D203")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == orphan.n3()

    def test_d203_described_bnode_passes(self):
        graph = Graph()
        node = BNode("described")
        graph.add(Triple(uri("a"), uri("p"), node))
        graph.add(Triple(node, uri("q"), Literal("x")))
        assert "ALEX-D203" not in codes_of(validate_graph(graph))

    def test_d204_reserved_vocabulary_collision(self):
        graph = Graph()
        typo = URIRef("http://www.w3.org/2002/07/owl#sameAS")
        graph.add(Triple(uri("a"), typo, uri("b")))
        diagnostic = only(validate_graph(graph), "ALEX-D204")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == typo.n3()
        assert "owl:sameAS" in diagnostic.message

    def test_d204_known_vocabulary_passes(self):
        graph = Graph()
        graph.add(Triple(uri("a"), URIRef("http://www.w3.org/2002/07/owl#sameAs"), uri("b")))
        graph.add(
            Triple(uri("a"), URIRef("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), uri("T"))
        )
        assert "ALEX-D204" not in codes_of(validate_graph(graph))

    def test_d204_misspelled_xsd_datatype(self):
        graph = Graph()
        graph.add(Triple(uri("a"), uri("p"), Literal("5", datatype=XSD + "integr")))
        diagnostic = only(validate_graph(graph), "ALEX-D204")
        assert "xsd:integr" in diagnostic.message


class TestLinkTier:
    def test_d301_cycle(self):
        links = LinkSet([Link(uri("a"), uri("b")), Link(uri("b"), uri("c")),
                         Link(uri("c"), uri("a"))])
        diagnostic = only(validate_links(links), "ALEX-D301")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == Link(uri("c"), uri("a")).n3()
        assert diagnostic.link == Link(uri("c"), uri("a"))

    def test_d301_self_link(self):
        links = LinkSet([Link(uri("a"), uri("a"))])
        diagnostic = only(validate_links(links), "ALEX-D301")
        assert "itself" in diagnostic.message

    def test_d302_asymmetric_duplicate(self):
        links = LinkSet([Link(uri("a"), uri("b")), Link(uri("b"), uri("a"))])
        diagnostics = validate_links(links)
        diagnostic = only(diagnostics, "ALEX-D302")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == Link(uri("b"), uri("a")).n3()
        assert codes_of(diagnostics).count("ALEX-D302") == 1

    def test_d303_one_to_many(self):
        links = LinkSet([Link(uri("a"), uri("x")), Link(uri("a"), uri("y"))])
        diagnostic = only(validate_links(links), "ALEX-D303")
        assert diagnostic.severity == "warning"
        assert diagnostic.subject == uri("a").n3()

    def test_d303_many_to_one(self):
        links = LinkSet([Link(uri("a"), uri("x")), Link(uri("b"), uri("x"))])
        diagnostic = only(validate_links(links), "ALEX-D303")
        assert diagnostic.subject == uri("x").n3()

    def test_d304_dangling_endpoint(self):
        left = Graph()
        left.add(Triple(uri("a"), uri("p"), Literal("x")))
        right = Graph()
        right.add(Triple(uri("y"), uri("p"), Literal("y")))
        links = LinkSet([Link(uri("ghost"), uri("y"))])
        diagnostic = only(validate_links(links, left=left, right=right), "ALEX-D304")
        assert diagnostic.severity == "error"
        assert diagnostic.subject == Link(uri("ghost"), uri("y")).n3()
        assert diagnostic.link == Link(uri("ghost"), uri("y"))

    def test_d304_object_position_counts_as_present(self):
        left = Graph()
        left.add(Triple(uri("a"), uri("p"), uri("obj-only")))
        links = LinkSet([Link(uri("obj-only"), uri("y"))])
        assert "ALEX-D304" not in codes_of(validate_links(links, left=left))

    def test_d305_below_theta(self):
        links = LinkSet()
        low = Link(uri("a"), uri("x"))
        links.add(low, score=0.1)
        links.add(Link(uri("b"), uri("y")), score=0.9)
        diagnostics = validate_links(links, theta=0.3)
        diagnostic = only(diagnostics, "ALEX-D305")
        assert diagnostic.severity == "error"
        assert diagnostic.subject == low.n3()
        assert diagnostic.link == low
        assert codes_of(diagnostics).count("ALEX-D305") == 1

    def test_d305_unscored_links_are_not_flagged(self):
        links = LinkSet([Link(uri("a"), uri("x"))])
        assert "ALEX-D305" not in codes_of(validate_links(links, theta=0.3))

    def test_d306_blacklisted_link(self):
        bad = Link(uri("a"), uri("x"))
        links = LinkSet([bad, Link(uri("b"), uri("y"))])
        diagnostic = only(validate_links(links, blacklist={bad}), "ALEX-D306")
        assert diagnostic.severity == "error"
        assert diagnostic.subject == bad.n3()
        assert diagnostic.link == bad

    def test_clean_link_set_has_no_diagnostics(self):
        left = Graph()
        right = Graph()
        left.add(Triple(uri("a"), uri("p"), Literal("x")))
        right.add(Triple(uri("x"), uri("p"), Literal("x")))
        links = LinkSet()
        links.add(Link(uri("a"), uri("x")), score=0.95)
        assert validate_links(links, left=left, right=right, theta=0.3, blacklist=set()) == []

    def test_linkset_validate_hook(self):
        links = LinkSet([Link(uri("a"), uri("x")), Link(uri("a"), uri("y"))])
        assert "ALEX-D303" in codes_of(links.validate())


class TestOrderingAndFormat:
    def test_deterministic_ordering_on_identical_input(self):
        def build():
            graph = Graph()
            graph.add(Triple(uri("b"), uri("p"), Literal("x", datatype=XSD + "integer")))
            graph.add(Triple(uri("a"), uri("p"), uri("c")))
            graph.add(Triple(URIRef("relative"), uri("q"), Literal("y", language="toolongsubtagx")))
            graph.add(Triple(uri("d"), uri("q"), BNode("n")))
            return graph

        first = validate_graph(build())
        second = validate_graph(build())
        assert first == second
        assert first == sorted(first, key=lambda d: (d.severity == "warning", d.code))
        # errors strictly before warnings
        severities = [d.severity for d in first]
        assert severities == sorted(severities, key=("error", "warning", "info").index)

    def test_insertion_order_does_not_change_output(self):
        triples = [
            Triple(uri("a"), uri("p"), Literal("x", datatype=XSD + "integer")),
            Triple(uri("b"), uri("p"), uri("c")),
            Triple(URIRef("relative"), uri("q"), Literal("z")),
        ]
        forward = Graph(triples=triples)
        backward = Graph(triples=reversed(triples))
        assert validate_graph(forward) == validate_graph(backward)

    def test_format_includes_subject_and_graph(self):
        diagnostic = DataDiagnostic(
            code="ALEX-D101", severity="error", message="msg",
            subject="<http://ex/a>", graph="left", hint="fix",
        )
        assert diagnostic.format() == "[left] ALEX-D101 error: msg — <http://ex/a> (hint: fix)"

    def test_to_dict_has_subject_not_position(self):
        diagnostic = DataDiagnostic(code="ALEX-D103", severity="warning",
                                    message="msg", subject="<x>")
        data = diagnostic.to_dict()
        assert data["subject"] == "<x>"
        assert "line" not in data and "column" not in data


class TestDatasetValidation:
    def test_named_graphs_carry_graph_label(self):
        from repro.rdf.dataset import Dataset

        dataset = Dataset(name="fed")
        dataset.default.add(Triple(uri("a"), uri("p"), Literal("x")))
        named = dataset.graph(uri("g1"))
        named.add(Triple(uri("b"), uri("q"), Literal("bad", datatype=XSD + "integer")))
        diagnostics = validate_dataset(dataset)
        diagnostic = only(diagnostics, "ALEX-D101")
        assert diagnostic.graph == EX + "g1"


class TestStrictGates:
    def test_check_graph_raises_on_errors(self):
        graph = Graph()
        graph.add(Triple(uri("a"), uri("p"), Literal("x", datatype=XSD + "integer")))
        with pytest.raises(DataValidationError) as excinfo:
            check_graph(graph)
        assert any(d.code == "ALEX-D101" for d in excinfo.value.diagnostics)

    def test_check_graph_passes_warnings_through(self):
        graph = Graph()
        graph.add(Triple(URIRef("relative"), uri("p"), Literal("x")))
        diagnostics = check_graph(graph)  # warning only: no raise
        assert codes_of(diagnostics) == ["ALEX-D103"]

    def test_check_links_raises_on_dangling(self):
        left = Graph()
        left.add(Triple(uri("a"), uri("p"), Literal("x")))
        links = LinkSet([Link(uri("ghost"), uri("y"))])
        with pytest.raises(DataValidationError):
            check_links(links, left=left)


class TestObsIntegration:
    def test_runs_and_diagnostics_counted(self):
        graph = Graph()
        graph.add(Triple(uri("a"), uri("p"), Literal("x", datatype=XSD + "integer")))
        with obs.use_registry() as registry:
            validate_graph(graph)
            snapshot = registry.snapshot()
        assert obs.counter_total(snapshot, "rdf.validate.runs") == 1
        labels = [
            entry["labels"]
            for entry in snapshot["counters"]
            if entry["name"] == "rdf.validate.diagnostics"
        ]
        assert {"code": "ALEX-D101", "severity": "error"} in labels

    def test_link_validation_counts_one_run(self):
        links = LinkSet([Link(uri("a"), uri("x"))])
        with obs.use_registry() as registry:
            validate_links(links)
            snapshot = registry.snapshot()
        assert obs.counter_total(snapshot, "rdf.validate.runs") == 1
