"""Tests for engine state save/load (the AlexEngine method API + shims)."""

import json

import pytest

from repro.core import AlexConfig, AlexEngine
from repro.core.persistence import (
    dump_engine,
    load_engine,
    load_engine_file,
    save_engine_file,
)
from repro.errors import ConfigError
from repro.features import FeatureSpace
from repro.feedback import FeedbackSession, GroundTruthOracle
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")


def link(i: int, j: int) -> Link:
    return Link(URIRef(f"http://a/res/e{i}"), URIRef(f"http://b/res/e{j}"))


@pytest.fixture()
def space() -> FeatureSpace:
    space = FeatureSpace(theta=0.3)
    for i in range(5):
        left = Entity(URIRef(f"http://a/res/e{i}"), {LEFT_NAME: (Literal(f"Name{i} Jones"),)})
        for j in range(5):
            right = Entity(
                URIRef(f"http://b/res/e{j}"), {RIGHT_NAME: (Literal(f"Name{j} Jones"),)}
            )
            space.add_pair(left, right)
    space.freeze()
    return space


@pytest.fixture()
def trained_engine(space) -> AlexEngine:
    truth = LinkSet([link(i, i) for i in range(5)])
    engine = AlexEngine(space, LinkSet([link(0, 0)]), AlexConfig(episode_size=15, seed=3))
    session = FeedbackSession(engine, GroundTruthOracle(truth), seed=3)
    session.run(episode_size=15, max_episodes=6)
    return engine


class TestRoundTrip:
    def test_candidates_preserved(self, space, trained_engine):
        restored = AlexEngine.from_dict(space, trained_engine.to_dict())
        assert restored.candidates.snapshot() == trained_engine.candidates.snapshot()

    def test_blacklist_and_confirmed_preserved(self, space, trained_engine):
        restored = AlexEngine.from_dict(space, trained_engine.to_dict())
        assert restored.blacklist == trained_engine.blacklist
        assert restored.confirmed == trained_engine.confirmed

    def test_policy_preserved(self, space, trained_engine):
        restored = AlexEngine.from_dict(space, trained_engine.to_dict())
        for state in trained_engine.policy.states():
            assert restored.policy.greedy_action(state) == trained_engine.policy.greedy_action(state)

    def test_q_values_preserved(self, space, trained_engine):
        restored = AlexEngine.from_dict(space, trained_engine.to_dict())
        for state_action in trained_engine.values.known_pairs():
            assert restored.values.q(state_action) == pytest.approx(
                trained_engine.values.q(state_action)
            )

    def test_episode_counters_preserved(self, space, trained_engine):
        restored = AlexEngine.from_dict(space, trained_engine.to_dict())
        assert restored.episodes_completed == trained_engine.episodes_completed
        assert restored.converged_at == trained_engine.converged_at

    def test_restored_engine_keeps_learning(self, space, trained_engine):
        truth = LinkSet([link(i, i) for i in range(5)])
        restored = AlexEngine.from_dict(space, trained_engine.to_dict())
        session = FeedbackSession(restored, GroundTruthOracle(truth), seed=4)
        session.run_episode(15)
        assert restored.episodes_completed == trained_engine.episodes_completed + 1

    def test_file_round_trip(self, space, trained_engine, tmp_path):
        path = str(tmp_path / "engine.json")
        trained_engine.save(path)
        restored = AlexEngine.load(space, path)
        assert restored.candidates.snapshot() == trained_engine.candidates.snapshot()
        # the file is real JSON
        with open(path) as handle:
            assert json.load(handle)["format_version"] == 1

    def test_scores_preserved(self, space):
        candidates = LinkSet()
        candidates.add(link(0, 0), score=0.93)
        engine = AlexEngine(space, candidates, AlexConfig(episode_size=5))
        restored = AlexEngine.from_dict(space, engine.to_dict())
        assert restored.candidates.score(link(0, 0)) == 0.93

    def test_unknown_version_rejected(self, space, trained_engine):
        state = trained_engine.to_dict()
        state["format_version"] = 99
        with pytest.raises(ConfigError):
            AlexEngine.from_dict(space, state)

    def test_dump_is_deterministic(self, space, trained_engine):
        first = json.dumps(trained_engine.to_dict(), sort_keys=True)
        second = json.dumps(trained_engine.to_dict(), sort_keys=True)
        assert first == second


class TestDeprecatedShims:
    """The pre-1.1 four-function surface still works, but warns."""

    def test_dump_and_load_engine_warn_and_round_trip(self, space, trained_engine):
        with pytest.warns(DeprecationWarning, match="AlexEngine.to_dict"):
            state = dump_engine(trained_engine)
        assert state == trained_engine.to_dict()
        with pytest.warns(DeprecationWarning, match="AlexEngine.from_dict"):
            restored = load_engine(space, state)
        assert restored.candidates.snapshot() == trained_engine.candidates.snapshot()

    def test_file_shims_warn_and_round_trip(self, space, trained_engine, tmp_path):
        path = str(tmp_path / "engine.json")
        with pytest.warns(DeprecationWarning, match="AlexEngine.save"):
            save_engine_file(trained_engine, path)
        with pytest.warns(DeprecationWarning, match="AlexEngine.load"):
            restored = load_engine_file(space, path)
        assert restored.candidates.snapshot() == trained_engine.candidates.snapshot()

    def test_new_api_does_not_warn(self, space, trained_engine, tmp_path):
        import warnings

        path = str(tmp_path / "engine.json")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            trained_engine.save(path)
            AlexEngine.load(space, path)
            AlexEngine.from_dict(space, trained_engine.to_dict())
