"""Unit tests for the repro.obs observability subsystem."""

import json

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import Registry


@pytest.fixture()
def registry() -> Registry:
    return Registry("test")


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_identity_returns_same_object(self, registry):
        assert registry.counter("c", a="1") is registry.counter("c", a="1")

    def test_label_sets_are_distinct(self, registry):
        registry.counter("c", verdict="positive").inc()
        registry.counter("c", verdict="negative").inc(2)
        assert registry.counter("c", verdict="positive").value == 1
        assert registry.counter("c", verdict="negative").value == 2

    def test_kind_conflict_raises(self, registry):
        registry.counter("c")
        with pytest.raises(ObsError, match="already registered"):
            registry.gauge("c")


class TestGauge:
    def test_set_and_adjust(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_bucket_semantics_upper_bound_inclusive(self, registry):
        histogram = registry.histogram("h", boundaries=(1, 2))
        for value in (0.5, 1, 3):
            histogram.observe(value)
        # bucket 0: <= 1 (0.5 and 1); bucket 1: <= 2 (none); overflow: 3
        assert histogram.counts == [2, 0, 1]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(4.5)
        assert histogram.min == 0.5
        assert histogram.max == 3
        assert histogram.mean == pytest.approx(1.5)

    def test_empty_histogram(self, registry):
        histogram = registry.histogram("h")
        assert histogram.mean is None
        assert histogram.min is None

    def test_timer_observes_seconds(self, registry):
        with registry.timer("t.seconds") as timing:
            pass
        histogram = registry.histogram("t.seconds")
        assert histogram.count == 1
        assert histogram.sum >= 0
        assert timing.elapsed is not None


class TestSpans:
    def test_nesting_builds_paths(self, registry):
        with registry.span("episode"):
            with registry.span("explore"):
                pass
            with registry.span("explore"):
                pass
        snapshot = registry.snapshot()
        by_path = {entry["path"]: entry for entry in snapshot["spans"]}
        assert by_path["episode"]["count"] == 1
        assert by_path["episode/explore"]["count"] == 2
        assert by_path["episode"]["total_seconds"] >= by_path["episode/explore"][
            "total_seconds"
        ]

    def test_span_survives_exceptions(self, registry):
        with pytest.raises(ValueError):
            with registry.span("outer"):
                raise ValueError("boom")
        # stack unwound: a new span is top-level again
        with registry.span("fresh"):
            pass
        paths = {entry["path"] for entry in registry.snapshot()["spans"]}
        assert paths == {"outer", "fresh"}

    def test_slash_in_span_name_rejected(self, registry):
        with pytest.raises(ObsError):
            registry.span("a/b")


class TestSnapshotAndMerge:
    def _populate(self, registry):
        registry.counter("c", kind="x").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", boundaries=(1, 10)).observe(5)
        with registry.span("s"):
            pass

    def test_snapshot_is_json_serializable(self, registry):
        self._populate(registry)
        text = json.dumps(registry.snapshot())
        assert json.loads(text)["format_version"] == obs.SNAPSHOT_VERSION

    def test_merge_sums_counters_histograms_and_spans(self, registry):
        self._populate(registry)
        snapshot = registry.snapshot()
        target = Registry("merged")
        target.merge(snapshot)
        target.merge(snapshot)
        merged = target.snapshot()
        assert obs.counter_total(merged, "c") == 6
        histogram = merged["histograms"][0]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(10)
        assert histogram["counts"] == [0, 2, 0]
        assert merged["spans"][0]["count"] == 2

    def test_merge_gauges_last_write_wins(self, registry):
        registry.gauge("g").set(7)
        target = Registry("merged")
        target.gauge("g").set(100)
        target.merge(registry.snapshot())
        assert target.gauge("g").value == 7

    def test_merge_extra_labels_keep_origins_apart(self, registry):
        registry.counter("c").inc(2)
        target = Registry("merged")
        target.merge(registry.snapshot(), extra_labels={"partition": "p0"})
        target.merge(registry.snapshot(), extra_labels={"partition": "p1"})
        assert target.counter("c", partition="p0").value == 2
        assert target.counter("c", partition="p1").value == 2

    def test_merge_rejects_unknown_version(self, registry):
        with pytest.raises(ObsError, match="version"):
            registry.merge({"format_version": 99})

    def test_merge_rejects_mismatched_boundaries(self, registry):
        registry.histogram("h", boundaries=(1, 2)).observe(1)
        snapshot = registry.snapshot()
        target = Registry("merged")
        target.histogram("h", boundaries=(5, 6)).observe(1)
        with pytest.raises(ObsError, match="boundaries"):
            target.merge(snapshot)

    def test_json_file_round_trip(self, registry, tmp_path):
        self._populate(registry)
        path = str(tmp_path / "obs.json")
        registry.dump_json(path)
        loaded = obs.load_snapshot(path)
        target = Registry("merged")
        target.merge(loaded)
        restored = target.snapshot()
        original = registry.snapshot()
        for section in ("counters", "gauges", "histograms", "spans"):
            assert restored[section] == original[section]

    def test_load_snapshot_rejects_non_snapshot(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"hello": 1}, handle)
        with pytest.raises(ObsError):
            obs.load_snapshot(path)

    def test_render_mentions_instruments(self, registry):
        self._populate(registry)
        text = registry.render()
        assert "c{kind=x}" in text
        assert "g" in text and "h" in text and "s" in text

    def test_reset_clears_everything(self, registry):
        self._populate(registry)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == [] and snapshot["spans"] == []


class TestDefaultRegistry:
    def test_module_helpers_hit_the_default(self):
        with obs.use_registry() as registry:
            obs.inc("x")
            obs.set_gauge("y", 3)
            obs.observe("z", 1)
            with obs.timer("t"):
                pass
            with obs.span("s"):
                pass
            snapshot = registry.snapshot()
        assert obs.counter_total(snapshot, "x") == 1
        assert snapshot["gauges"][0]["value"] == 3

    def test_use_registry_isolates_and_restores(self):
        before = obs.get_registry()
        with obs.use_registry():
            assert obs.get_registry() is not before
            obs.inc("isolated.counter")
        assert obs.get_registry() is before
        assert obs.counter_total(obs.snapshot(), "isolated.counter") == 0

    def test_use_registry_restores_on_error(self):
        before = obs.get_registry()
        with pytest.raises(RuntimeError):
            with obs.use_registry():
                raise RuntimeError("boom")
        assert obs.get_registry() is before

    def test_set_registry_returns_previous(self):
        replacement = Registry("swap")
        previous = obs.set_registry(replacement)
        try:
            assert obs.get_registry() is replacement
        finally:
            obs.set_registry(previous)


class TestHistogramQuantiles:
    def test_quantile_interpolates_within_bucket(self, registry):
        from repro.obs.instruments import quantile_from_buckets

        # 100 observations uniform in the single bucket (0, 10]:
        value = quantile_from_buckets((10.0,), [100], 0.5, minimum=0.0, maximum=10.0)
        assert value == pytest.approx(5.0)

    def test_quantile_none_when_empty(self, registry):
        histogram = registry.histogram("h")
        assert histogram.quantile(0.5) is None

    def test_quantile_clamped_to_observed_range(self, registry):
        histogram = registry.histogram("h", boundaries=(1.0, 1000.0))
        histogram.observe(2.0)
        histogram.observe(3.0)
        assert histogram.quantile(0.99) <= 3.0
        assert histogram.quantile(0.01) >= 2.0

    def test_snapshot_carries_p50_p95_p99(self, registry):
        histogram = registry.histogram("h", boundaries=(1.0, 10.0))
        for value in (0.5, 2.0, 5.0, 20.0):
            histogram.observe(value)
        (entry,) = registry.snapshot()["histograms"]
        assert set(entry) >= {"p50", "p95", "p99"}
        assert entry["p50"] <= entry["p95"] <= entry["p99"]

    def test_render_shows_quantiles(self, registry):
        registry.histogram("h").observe(3.0)
        assert "p50=" in registry.render()

    def test_merge_ignores_derived_quantiles_and_stays_associative(self):
        """merge(merge(a, b), c) == merge(a, merge(b, c)) for histograms —
        p50/p95/p99 are derived from raw buckets, never summed."""
        import random

        rng = random.Random(11)
        parts = []
        for _ in range(3):
            part = Registry("part")
            histogram = part.histogram("h.lat", boundaries=(1.0, 5.0, 25.0))
            for _ in range(rng.randint(1, 30)):
                histogram.observe(rng.uniform(0, 50))
            parts.append(part.snapshot())

        left = Registry("left")   # (a + b) + c
        left.merge(parts[0])
        left.merge(parts[1])
        intermediate = left.snapshot()
        rebuilt = Registry("merged")
        rebuilt.merge(intermediate)
        rebuilt.merge(parts[2])

        right = Registry("merged")  # a + (b + c)
        inner = Registry("inner")
        inner.merge(parts[1])
        inner.merge(parts[2])
        right.merge(parts[0])
        right.merge(inner.snapshot())

        assert rebuilt.snapshot() == right.snapshot()
