"""Unit tests for PartitionedAlex and AlexConfig validation."""

import pytest

from repro.core import AlexConfig, PartitionedAlex
from repro.errors import ConfigError
from repro.features import FeatureSpace
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")


def make_space(indices: list[int]) -> FeatureSpace:
    space = FeatureSpace(theta=0.3)
    for i in indices:
        left = Entity(URIRef(f"http://a/res/e{i}"), {LEFT_NAME: (Literal(f"Name{i} Jones"),)})
        right = Entity(URIRef(f"http://b/res/e{i}"), {RIGHT_NAME: (Literal(f"Name{i} Jones"),)})
        space.add_pair(left, right)
    space.freeze()
    return space


def link(i: int) -> Link:
    return Link(URIRef(f"http://a/res/e{i}"), URIRef(f"http://b/res/e{i}"))


class TestAlexConfig:
    def test_defaults_follow_paper(self):
        cfg = AlexConfig(episode_size=1000)
        assert cfg.step_size == 0.05
        assert cfg.theta == 0.3
        assert cfg.max_episodes == 100
        assert cfg.relaxed_change_threshold == 0.05

    @pytest.mark.parametrize(
        "overrides",
        [
            {"episode_size": 0},
            {"episode_size": 10, "step_size": 0.0},
            {"episode_size": 10, "step_size": 0.9},
            {"episode_size": 10, "epsilon": 0.0},
            {"episode_size": 10, "epsilon": 1.0},
            {"episode_size": 10, "theta": -0.1},
            {"episode_size": 10, "positive_reward": -1.0},
            {"episode_size": 10, "negative_reward": 1.0},
            {"episode_size": 10, "max_episodes": 0},
            {"episode_size": 10, "relaxed_change_threshold": 0.0},
            {"episode_size": 10, "rollback_min_negatives": 0},
            {"episode_size": 10, "rollback_negative_fraction": 0.0},
            {"episode_size": 10, "convergence_patience": 0},
            {"episode_size": 10, "distinctiveness_min_negatives": 0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigError):
            AlexConfig(**overrides)

    def test_replace(self):
        cfg = AlexConfig(episode_size=10)
        assert cfg.replace(step_size=0.1).step_size == 0.1
        assert cfg.step_size == 0.05  # original untouched


class TestPartitionedAlex:
    @pytest.fixture()
    def partitioned(self):
        spaces = [make_space([0, 1, 2]), make_space([3, 4, 5])]
        initial = LinkSet([link(0), link(3)])
        return PartitionedAlex(spaces, initial, AlexConfig(episode_size=10, seed=1))

    def test_initial_links_routed_to_owning_partition(self, partitioned):
        assert link(0) in partitioned.engines[0].candidates
        assert link(3) in partitioned.engines[1].candidates

    def test_feedback_routed(self, partitioned):
        partitioned.process_feedback(link(4), positive=True)
        assert link(4) in partitioned.engines[1].candidates
        assert link(4) not in partitioned.engines[0].candidates

    def test_candidates_union(self, partitioned):
        assert set(partitioned.candidates) == {link(0), link(3)}

    def test_end_episode_merges_stats(self, partitioned):
        partitioned.process_feedback(link(0), positive=True)
        partitioned.process_feedback(link(3), positive=True)
        stats = partitioned.end_episode()
        assert stats.feedback_count == 2
        assert stats.positive_count == 2

    def test_convergence_requires_all_partitions(self, partitioned):
        partitioned.engines[0].end_episode()
        assert not partitioned.converged
        partitioned.engines[1].end_episode()
        assert partitioned.converged
        assert partitioned.converged_at == 1

    def test_link_outside_all_spaces_gets_hashed_owner(self, partitioned):
        stray = Link(URIRef("http://a/res/zz"), URIRef("http://b/res/zz"))
        engine = partitioned.engine_for(stray)
        assert engine in partitioned.engines

    def test_engines_have_distinct_seeds(self, partitioned):
        seeds = {engine.config.seed for engine in partitioned.engines}
        assert len(seeds) == 2

    def test_empty_spaces_rejected(self):
        with pytest.raises(ConfigError):
            PartitionedAlex([], LinkSet(), AlexConfig(episode_size=10))

    def test_owns(self, partitioned):
        assert partitioned.owns(link(5))
        assert not partitioned.owns(
            Link(URIRef("http://a/res/zz"), URIRef("http://b/res/zz"))
        )
