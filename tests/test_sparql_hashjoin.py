"""Parity and strategy tests for the dictionary-encoded hash-join engine.

The executor in :mod:`repro.sparql.eval` joins integer ID tuples and picks
hash-join vs index-nested-loop per pattern stage; the reference engine in
:mod:`repro.sparql.reference` is the preserved pre-1.6 term-space
evaluator. For every query the two must produce identical solution
*multisets* (row order is not part of the contract).
"""

import random
from collections import Counter

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef, XSD_INTEGER
from repro.rdf.triples import Triple
from repro.sparql import Var, prepare, query
from repro.sparql.explain import explain
from repro.sparql.reference import ref_evaluate_ask, ref_evaluate_select, ref_query

EX = "http://x/"
PRE = f"PREFIX ex: <{EX}> "


def build_graph(seed: int, people: int = 30) -> Graph:
    """A seeded synthetic social graph: knows/name/age/team edges."""
    rng = random.Random(seed)
    graph = Graph(name=f"fuzz-{seed}")
    teams = [URIRef(EX + f"team{i}") for i in range(4)]
    nodes = [URIRef(EX + f"p{i}") for i in range(people)]
    knows = URIRef(EX + "knows")
    name = URIRef(EX + "name")
    age = URIRef(EX + "age")
    team = URIRef(EX + "team")
    for i, node in enumerate(nodes):
        if rng.random() < 0.9:
            graph.add(Triple(node, name, Literal(f"Person {i}")))
        if rng.random() < 0.8:
            graph.add(Triple(node, age, Literal(str(rng.randint(18, 70)),
                                                datatype=XSD_INTEGER)))
        graph.add(Triple(node, team, rng.choice(teams)))
        for _ in range(rng.randint(0, 5)):
            other = rng.choice(nodes)
            graph.add(Triple(node, knows, other))
    # a few self-loops so repeated-variable patterns have matches
    for node in rng.sample(nodes, 3):
        graph.add(Triple(node, knows, node))
    return graph


QUERIES = [
    # join-heavy BGPs (the hash-join sweet spot)
    "SELECT ?a ?b WHERE { ?a ex:knows ?b . ?b ex:knows ?a }",
    "SELECT ?a ?n WHERE { ?a ex:knows ?b . ?b ex:knows ?c . ?c ex:name ?n }",
    "SELECT ?a ?t WHERE { ?a ex:knows ?b . ?a ex:team ?t . ?b ex:team ?t }",
    # repeated variable inside one pattern (self-loops)
    "SELECT ?x WHERE { ?x ex:knows ?x }",
    "SELECT ?x ?n WHERE { ?x ex:knows ?x . ?x ex:name ?n }",
    # OPTIONAL, nested and filtered
    "SELECT ?a ?n WHERE { ?a ex:knows ?b OPTIONAL { ?a ex:name ?n } }",
    "SELECT ?a ?n ?g WHERE { ?a ex:team ?t "
    "OPTIONAL { ?a ex:name ?n } OPTIONAL { ?a ex:age ?g FILTER (?g > 40) } }",
    # UNION with different bound masks feeding a later join
    "SELECT ?p ?v WHERE { { ?p ex:name ?v } UNION { ?p ex:age ?v } ?p ex:knows ?q }",
    "SELECT ?a WHERE { { ?a ex:knows ?b } UNION { ?b ex:knows ?a } ?a ex:team ex:team0 }",
    # FILTER / BIND / VALUES
    "SELECT ?a ?g WHERE { ?a ex:age ?g FILTER (?g >= 30 && ?g < 60) }",
    "SELECT ?a ?u WHERE { ?a ex:name ?n BIND(UCASE(?n) AS ?u) ?a ex:knows ?b }",
    "SELECT ?a ?t WHERE { VALUES ?t { ex:team0 ex:team1 } ?a ex:team ?t }",
    "SELECT ?a WHERE { ?a ex:name ?n FILTER (EXISTS { ?a ex:knows ?b }) }",
    # solution modifiers
    "SELECT DISTINCT ?t WHERE { ?a ex:team ?t . ?a ex:knows ?b }",
    "SELECT ?n WHERE { ?a ex:name ?n . ?a ex:knows ?b } ORDER BY ?n LIMIT 7",
    # aggregation over a join
    "SELECT ?t (COUNT(?a) AS ?c) WHERE { ?a ex:team ?t . ?a ex:knows ?b } GROUP BY ?t",
]


def canonical(result) -> Counter:
    """Solution multiset, independent of row and variable order."""
    return Counter(
        tuple(sorted((v.name, t.n3()) for v, t in row.items())) for row in result.rows
    )


class TestHashJoinParity:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("text", QUERIES)
    def test_matches_reference_engine(self, seed, text):
        graph = build_graph(seed)
        fast = prepare(PRE + text).execute(graph)
        slow = ref_query(graph, PRE + text)
        assert canonical(fast) == canonical(slow)

    @pytest.mark.parametrize("seed", range(3))
    def test_order_by_agrees_on_key_sequence(self, seed):
        graph = build_graph(seed)
        text = PRE + "SELECT ?n WHERE { ?a ex:name ?n . ?a ex:knows ?b } ORDER BY ?n"
        fast = prepare(text).execute(graph)
        slow = ref_query(graph, text)
        assert [str(t) for t in fast.column("n")] == [str(t) for t in slow.column("n")]

    @pytest.mark.parametrize("seed", range(3))
    def test_ask_agrees(self, seed):
        graph = build_graph(seed)
        for text in (
            PRE + "ASK { ?a ex:knows ?a }",
            PRE + "ASK { ?a ex:team ex:team9 }",
        ):
            parsed = prepare(text)
            assert parsed.execute(graph) == ref_query(graph, text)

    def test_bound_initial_bindings_match_reference(self):
        graph = build_graph(0)
        node = URIRef(EX + "p1")
        prepared = prepare(PRE + "SELECT ?b WHERE { ?a ex:knows ?b }")
        bound = prepared.execute(graph, bindings={"a": node})
        expected = ref_query(
            graph, PRE + f"SELECT ?b WHERE {{ <{EX}p1> ex:knows ?b }}"
        )
        assert Counter(t.n3() for t in bound.column("b")) == Counter(
            t.n3() for t in expected.column("b")
        )


class TestJoinStrategy:
    def test_analyze_reports_hash_join_on_wide_input(self):
        graph = build_graph(1, people=40)
        plan = explain(
            graph,
            PRE + "SELECT ?a ?c WHERE { ?a ex:knows ?b . ?b ex:knows ?c }",
            analyze=True,
        )
        patterns = [n for n in plan.operators() if n.op == "pattern" and n.executed]
        assert len(patterns) == 2
        # the second stage receives one row per knows-edge: far past the
        # hash-join threshold
        strategies = {n.strategy for n in patterns}
        assert "hash-join" in strategies
        for node in patterns:
            assert node.rows_out >= 0 and node.seconds >= 0.0
        assert any(n.rows_in > 8 for n in patterns)
        assert "strategy=hash-join" in plan.render()

    def test_analyze_keeps_nested_loop_on_tiny_input(self):
        graph = Graph()
        knows = URIRef(EX + "knows")
        a, b, c = (URIRef(EX + n) for n in "abc")
        graph.add(Triple(a, knows, b))
        graph.add(Triple(b, knows, c))
        plan = explain(
            graph, PRE + "SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }",
            analyze=True,
        )
        patterns = [n for n in plan.operators() if n.op == "pattern" and n.executed]
        assert {n.strategy for n in patterns} == {"index-nested-loop"}

    def test_query_results_unaffected_by_strategy_choice(self):
        # same query on the same data, far above and far below the
        # threshold, both validated against the reference engine
        for people in (5, 60):
            graph = build_graph(2, people=people)
            text = PRE + "SELECT ?a ?c WHERE { ?a ex:knows ?b . ?b ex:knows ?c }"
            assert canonical(query(graph, text)) == canonical(ref_query(graph, text))


class TestReferenceEngineSelfCheck:
    def test_reference_select_shape(self):
        graph = build_graph(3)
        result = ref_evaluate_select(
            graph,
            prepare(PRE + "SELECT ?a ?n WHERE { ?a ex:name ?n }").plan,
        )
        assert result.variables == [Var("a"), Var("n")]
        assert all(Var("n") in row for row in result.rows)

    def test_reference_ask(self):
        graph = build_graph(3)
        assert ref_evaluate_ask(graph, prepare(PRE + "ASK { ?a ex:knows ?b }").plan)
