"""Tests for FILTER EXISTS / NOT EXISTS."""

import pytest

from repro.errors import FederationError
from repro.federation import Endpoint, FederatedEngine
from repro.rdf import turtle
from repro.sparql import query

PRE = "PREFIX ex: <http://x/> "


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://x/> .
        ex:a ex:name "A" ; ex:team ex:heat .
        ex:b ex:name "B" .
        ex:c ex:name "C" ; ex:team ex:okc .
        """
    )


class TestExists:
    def test_exists_keeps_matching(self, graph):
        result = query(
            graph,
            PRE + "SELECT ?n WHERE { ?p ex:name ?n FILTER (EXISTS { ?p ex:team ?t }) }",
        )
        assert {str(v) for v in result.column("n")} == {"A", "C"}

    def test_not_exists_keeps_nonmatching(self, graph):
        result = query(
            graph,
            PRE + "SELECT ?n WHERE { ?p ex:name ?n FILTER (NOT EXISTS { ?p ex:team ?t }) }",
        )
        assert [str(v) for v in result.column("n")] == ["B"]

    def test_exists_with_constant_pattern(self, graph):
        result = query(
            graph,
            PRE + "SELECT ?n WHERE { ?p ex:name ?n "
            "FILTER (EXISTS { ?p ex:team ex:heat }) }",
        )
        assert [str(v) for v in result.column("n")] == ["A"]

    def test_exists_combined_with_boolean(self, graph):
        result = query(
            graph,
            PRE + 'SELECT ?n WHERE { ?p ex:name ?n '
            'FILTER (EXISTS { ?p ex:team ?t } && ?n != "A") }',
        )
        assert [str(v) for v in result.column("n")] == ["C"]

    def test_negated_exists_via_bang(self, graph):
        result = query(
            graph,
            PRE + "SELECT ?n WHERE { ?p ex:name ?n FILTER (!EXISTS { ?p ex:team ?t }) }",
        )
        assert [str(v) for v in result.column("n")] == ["B"]

    def test_exists_in_federation_rejected(self, graph):
        engine = FederatedEngine([Endpoint(graph)])
        with pytest.raises(FederationError):
            engine.select(
                PRE + "SELECT ?n WHERE { ?p ex:name ?n "
                "FILTER (EXISTS { ?p ex:team ?t }) }"
            )
