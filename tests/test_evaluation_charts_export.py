"""Tests for text charts and CSV/JSON export."""

import csv
import io
import json

import pytest

from repro.core.episode import EpisodeStats
from repro.evaluation import (
    QualityTracker,
    ascii_plot,
    quality_sparklines,
    sparkline,
    tracker_rows,
    tracker_to_csv,
    tracker_to_json,
    trackers_to_csv,
    write_csv,
)
from repro.links import Link, LinkSet
from repro.rdf.terms import URIRef


def link(i: int) -> Link:
    return Link(URIRef(f"http://a/e{i}"), URIRef(f"http://b/e{i}"))


@pytest.fixture()
def tracker() -> QualityTracker:
    truth = LinkSet([link(0), link(1)])
    tracker = QualityTracker(truth)
    tracker.record_initial([link(0)])
    tracker.on_episode_end(
        EpisodeStats(index=1, feedback_count=10, positive_count=6, negative_count=4,
                     links_discovered=3, links_removed=1, rollbacks=1),
        LinkSet([link(0), link(1)]),
    )
    return tracker


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([0.0, 0.5, 1.0])) == 3

    def test_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[1] == "█"

    def test_monotone_input_monotone_output(self):
        line = sparkline([0.1, 0.3, 0.6, 0.9])
        assert list(line) == sorted(line)

    def test_values_clamped(self):
        assert sparkline([-5.0, 5.0]) == "▁█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_bad_range(self):
        with pytest.raises(ValueError):
            sparkline([0.5], low=1.0, high=1.0)

    def test_quality_sparklines_three_rows(self):
        text = quality_sparklines([0.5], [0.6], [0.55])
        assert text.count("\n") == 2
        assert text.startswith("P ")


class TestAsciiPlot:
    def test_dimensions(self):
        text = ascii_plot({"f": [0.0, 0.5, 1.0]}, height=5)
        lines = text.splitlines()
        assert len(lines) == 5 + 2  # rows + axis + legend
        assert lines[0].startswith(" 1.00 |")

    def test_markers_use_label_initial(self):
        text = ascii_plot({"precision": [1.0], "recall": [0.0]}, height=4)
        assert "p" in text and "r" in text

    def test_collision_marker(self):
        text = ascii_plot({"alpha": [1.0], "beta": [1.0]}, height=4)
        assert "*" in text

    def test_empty(self):
        assert ascii_plot({}) == "(no data)"

    def test_height_validated(self):
        with pytest.raises(ValueError):
            ascii_plot({"x": [0.5]}, height=1)


class TestExport:
    def test_rows_contain_all_fields(self, tracker):
        rows = tracker_rows(tracker)
        assert len(rows) == 2
        assert rows[1]["links_discovered"] == 3
        assert rows[1]["rollbacks"] == 1
        assert rows[0]["episode"] == 0

    def test_csv_round_trip(self, tracker):
        text = tracker_to_csv(tracker)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert float(parsed[1]["f_measure"]) == pytest.approx(1.0)

    def test_csv_with_label(self, tracker):
        text = tracker_to_csv(tracker, label="fig2a")
        assert text.splitlines()[1].startswith("fig2a,")

    def test_multi_tracker_csv(self, tracker):
        text = trackers_to_csv({"a": tracker, "b": tracker})
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert {row["label"] for row in parsed} == {"a", "b"}
        assert len(parsed) == 4

    def test_json_export(self, tracker):
        payload = json.loads(tracker_to_json(tracker, label="x"))
        assert payload["label"] == "x"
        assert payload["ground_truth_count"] == 2
        assert len(payload["episodes"]) == 2

    def test_write_csv_file(self, tracker, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(tracker, path)
        with open(path) as handle:
            assert handle.readline().startswith("episode,")
