"""Unit tests for the simplified PARIS aligner."""

import pytest

from repro.errors import LinkingError
from repro.links import Link
from repro.paris import ParisAligner, RelationStatistics, ValueIndex, paris_links
from repro.rdf import turtle
from repro.rdf.terms import Literal, URIRef


@pytest.fixture()
def left():
    return turtle.load(
        """
        @prefix r: <http://a/res/> .
        @prefix o: <http://a/ont/> .
        r:lebron o:name "LeBron James" ; o:code "LJ23" ; o:kind "player" .
        r:durant o:name "Kevin Durant" ; o:code "KD35" ; o:kind "player" .
        r:curry  o:name "Stephen Curry" ; o:code "SC30" ; o:kind "player" .
        """
    )


@pytest.fixture()
def right():
    return turtle.load(
        """
        @prefix r: <http://b/res/> .
        @prefix o: <http://b/ont/> .
        r:lj o:label "Lebron James" ; o:registry "LJ23" ; o:category "player" .
        r:kd o:label "Kevin Durant" ; o:registry "KD35" ; o:category "player" .
        r:sc o:label "Steph Curry" ; o:registry "SC30" ; o:category "player" .
        """
    )


class TestRelationStatistics:
    def test_functionality_single_valued(self, left):
        stats = RelationStatistics(left)
        assert stats.functionality(URIRef("http://a/ont/name")) == 1.0

    def test_inverse_functionality_identifying(self, left):
        stats = RelationStatistics(left)
        # codes are unique -> fully inverse functional
        assert stats.inverse_functionality(URIRef("http://a/ont/code")) == 1.0
        # 'kind' is shared by all three -> 1/3
        assert stats.inverse_functionality(URIRef("http://a/ont/kind")) == pytest.approx(1 / 3)

    def test_unknown_relation(self, left):
        stats = RelationStatistics(left)
        assert stats.functionality(URIRef("http://a/ont/none")) == 0.0


class TestValueIndex:
    def test_carriers(self, left):
        index = ValueIndex(left)
        carriers = index.carriers(Literal("lebron james"))
        assert len(carriers) == 1
        assert carriers[0][0] == URIRef("http://a/res/lebron")

    def test_normalization(self, left):
        index = ValueIndex(left)
        assert index.carriers(Literal("LEBRON   JAMES"))


class TestAligner:
    def test_finds_correct_links(self, left, right):
        scored = ParisAligner(left, right).run()
        expected = {
            Link(URIRef("http://a/res/lebron"), URIRef("http://b/res/lj")),
            Link(URIRef("http://a/res/durant"), URIRef("http://b/res/kd")),
            Link(URIRef("http://a/res/curry"), URIRef("http://b/res/sc")),
        }
        assert expected <= set(scored)
        for link in expected:
            assert scored.score(link) > 0.8

    def test_mutual_best_is_one_to_one(self, left, right):
        scored = ParisAligner(left, right).run(mutual_best=True)
        lefts = [link.left for link in scored]
        rights = [link.right for link in scored]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))

    def test_all_candidates_superset_of_assignment(self, left, right):
        mutual = set(ParisAligner(left, right).run(mutual_best=True))
        everything = set(ParisAligner(left, right).run(mutual_best=False))
        assert mutual <= everything

    def test_relation_alignment_learned(self, left, right):
        aligner = ParisAligner(left, right)
        aligner.run()
        alignment = aligner.relation_alignment()
        name_pair = (URIRef("http://a/ont/name"), URIRef("http://b/ont/label"))
        assert alignment.get(name_pair, 0.0) > 0.5

    def test_invalid_iterations(self, left, right):
        with pytest.raises(LinkingError):
            ParisAligner(left, right, iterations=0)

    def test_empty_graphs(self):
        empty = turtle.load("")
        assert len(ParisAligner(empty, empty).run()) == 0

    def test_paris_links_threshold(self, left, right):
        strict = paris_links(left, right, score_threshold=0.95)
        loose = paris_links(left, right, score_threshold=0.1, mutual_best=False)
        assert len(strict) <= len(loose)
        for link in strict:
            assert link in loose
