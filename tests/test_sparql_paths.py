"""Tests for SPARQL property paths."""

import pytest

from repro.errors import QuerySyntaxError
from repro.rdf import turtle
from repro.rdf.namespaces import RDF
from repro.rdf.terms import URIRef
from repro.sparql import query
from repro.sparql.parser import parse_query
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    PredicatePath,
    RepeatPath,
    SequencePath,
)

PRE = "PREFIX ex: <http://x/> "


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://x/> .
        ex:a ex:knows ex:b . ex:b ex:knows ex:c . ex:c ex:knows ex:d .
        ex:a ex:name "A" . ex:d ex:name "D" .
        ex:b ex:likes ex:z .
        ex:p1 ex:partOf ex:p2 . ex:p2 ex:partOf ex:p3 .
        ex:loop1 ex:next ex:loop2 . ex:loop2 ex:next ex:loop1 .
        """
    )


class TestPathParsing:
    def pattern(self, text: str):
        parsed = parse_query(PRE + f"SELECT ?x WHERE {{ {text} }}")
        return parsed.where.children[0].patterns[0]

    def test_plain_predicate_stays_uriref(self):
        pattern = self.pattern("?x ex:knows ?y")
        assert isinstance(pattern.predicate, URIRef)

    def test_sequence(self):
        pattern = self.pattern("?x ex:knows/ex:name ?y")
        assert isinstance(pattern.predicate, SequencePath)
        assert len(pattern.predicate.steps) == 2

    def test_alternative(self):
        pattern = self.pattern("?x ex:knows|ex:likes ?y")
        assert isinstance(pattern.predicate, AlternativePath)

    def test_inverse(self):
        pattern = self.pattern("?x ^ex:knows ?y")
        assert isinstance(pattern.predicate, InversePath)

    def test_star_plus_question(self):
        assert self.pattern("?x ex:knows* ?y").predicate == RepeatPath(
            PredicatePath(URIRef("http://x/knows")), min_hops=0
        )
        assert self.pattern("?x ex:knows+ ?y").predicate.min_hops == 1
        assert self.pattern("?x ex:knows? ?y").predicate.max_one is True

    def test_grouping(self):
        pattern = self.pattern("?x (ex:knows|ex:likes)+ ?y")
        assert isinstance(pattern.predicate, RepeatPath)
        assert isinstance(pattern.predicate.path, AlternativePath)

    def test_a_in_path(self):
        pattern = self.pattern("?x a/ex:knows ?y")
        assert pattern.predicate.steps[0] == PredicatePath(RDF.type)

    def test_invalid_path_element(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(PRE + 'SELECT ?x WHERE { ?x ex:p/"lit" ?y }')


class TestPathEvaluation:
    def test_one_or_more(self, graph):
        result = query(graph, PRE + "SELECT ?x WHERE { ex:a ex:knows+ ?x }")
        assert {str(v) for v in result.column("x")} == {
            "http://x/b", "http://x/c", "http://x/d"
        }

    def test_zero_or_more_includes_self(self, graph):
        result = query(graph, PRE + "SELECT ?x WHERE { ex:a ex:knows* ?x }")
        assert "http://x/a" in {str(v) for v in result.column("x")}
        assert len(result) == 4

    def test_zero_or_one(self, graph):
        result = query(graph, PRE + "SELECT ?x WHERE { ex:a ex:knows? ?x }")
        assert {str(v) for v in result.column("x")} == {"http://x/a", "http://x/b"}

    def test_sequence_path(self, graph):
        result = query(graph, PRE + "SELECT ?n WHERE { ex:a ex:knows/ex:knows/ex:knows/ex:name ?n }")
        assert [str(v) for v in result.column("n")] == ["D"]

    def test_alternative_path(self, graph):
        result = query(graph, PRE + "SELECT ?x WHERE { ex:b (ex:knows|ex:likes) ?x }")
        assert {str(v) for v in result.column("x")} == {"http://x/c", "http://x/z"}

    def test_inverse_path(self, graph):
        result = query(graph, PRE + "SELECT ?x WHERE { ?x ^ex:knows ex:b }")
        # (x ^knows b) iff (b knows x)
        assert [str(v) for v in result.column("x")] == ["http://x/c"]

    def test_bound_object_transitive(self, graph):
        result = query(graph, PRE + "SELECT ?x WHERE { ?x ex:knows+ ex:d }")
        assert {str(v) for v in result.column("x")} == {
            "http://x/a", "http://x/b", "http://x/c"
        }

    def test_both_bound(self, graph):
        assert query(graph, PRE + "ASK { ex:a ex:knows+ ex:d }") is True
        assert query(graph, PRE + "ASK { ex:d ex:knows+ ex:a }") is False

    def test_cycle_terminates(self, graph):
        result = query(graph, PRE + "SELECT ?x WHERE { ex:loop1 ex:next+ ?x }")
        assert {str(v) for v in result.column("x")} == {"http://x/loop1", "http://x/loop2"}

    def test_both_unbound(self, graph):
        result = query(graph, PRE + "SELECT ?x ?y WHERE { ?x ex:partOf+ ?y }")
        pairs = {(str(a), str(b)) for a, b in result.as_tuples()}
        assert ("http://x/p1", "http://x/p3") in pairs
        assert len(pairs) == 3

    def test_path_joins_with_plain_patterns(self, graph):
        result = query(
            graph,
            PRE + "SELECT ?n WHERE { ex:a ex:knows+ ?x . ?x ex:name ?n }",
        )
        assert [str(v) for v in result.column("n")] == ["D"]


class TestComplexInversePaths:
    def test_inverse_of_transitive(self, graph):
        # ?x ^(knows+) a  ≡  a knows+ ?x
        result = query(graph, PRE + "SELECT ?x WHERE { ?x ^(ex:knows+) ex:a }")
        assert {str(v) for v in result.column("x")} == {
            "http://x/b", "http://x/c", "http://x/d"
        }

    def test_inverse_sequence(self, graph):
        # ?x ^(knows/knows) c  ≡  c (knows/knows)^-1 ... ≡ ?x knows/knows... no:
        # (x, c) ∈ ^(knows/knows) iff (c ... ) — check against the forward form
        forward = query(graph, PRE + "SELECT ?x WHERE { ex:a ex:knows/ex:knows ?x }")
        backward = query(graph, PRE + "SELECT ?y WHERE { ?y ^(ex:knows/ex:knows) ex:a }")
        assert {str(v) for v in forward.column("x")} == {"http://x/c"}
        # (y, a) ∈ ^(seq) iff (a, y) ∈ seq → y = c
        assert {str(v) for v in backward.column("y")} == {"http://x/c"}

    def test_double_inverse_is_identity(self, graph):
        plain = query(graph, PRE + "SELECT ?x WHERE { ex:a ex:knows ?x }")
        doubled = query(graph, PRE + "SELECT ?x WHERE { ex:a ^(^ex:knows) ?x }")
        assert plain.as_tuples() == doubled.as_tuples()
