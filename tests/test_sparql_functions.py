"""Tests for the extended FILTER built-in functions."""

import pytest

from repro.rdf import turtle
from repro.sparql import query

PREFIX = "PREFIX ex: <http://x/> "


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://x/> .
        ex:a ex:name "LeBron James" ; ex:score -7 ; ex:tag "fr"@fr .
        ex:b ex:name "Kevin" ; ex:score 3 ; ex:link ex:target .
        """
    )


def names(graph, filter_expr: str) -> set[str]:
    result = query(
        graph, PREFIX + f"SELECT ?n WHERE {{ ?s ex:name ?n FILTER ({filter_expr}) }}"
    )
    return {str(value) for value in result.column("n")}


class TestStringFunctions:
    def test_strlen(self, graph):
        assert names(graph, "STRLEN(?n) > 10") == {"LeBron James"}

    def test_ucase_lcase(self, graph):
        assert names(graph, 'UCASE(?n) = "KEVIN"') == {"Kevin"}
        assert names(graph, 'LCASE(?n) = "kevin"') == {"Kevin"}

    def test_strends(self, graph):
        assert names(graph, 'STRENDS(?n, "James")') == {"LeBron James"}


class TestLangMatches:
    def test_exact(self, graph):
        result = query(
            graph,
            PREFIX + 'SELECT ?t WHERE { ?s ex:tag ?t FILTER (LANGMATCHES(LANG(?t), "fr")) }',
        )
        assert len(result) == 1

    def test_wildcard(self, graph):
        result = query(
            graph,
            PREFIX + 'SELECT ?t WHERE { ?s ex:tag ?t FILTER (LANGMATCHES(LANG(?t), "*")) }',
        )
        assert len(result) == 1

    def test_no_match(self, graph):
        result = query(
            graph,
            PREFIX + 'SELECT ?t WHERE { ?s ex:tag ?t FILTER (LANGMATCHES(LANG(?t), "de")) }',
        )
        assert len(result) == 0


class TestNumericAndTypeChecks:
    def test_abs(self, graph):
        result = query(
            graph, PREFIX + "SELECT ?s WHERE { ?s ex:score ?v FILTER (ABS(?v) > 5) }"
        )
        assert len(result) == 1

    def test_abs_non_numeric_eliminates(self, graph):
        result = query(
            graph, PREFIX + "SELECT ?s WHERE { ?s ex:name ?v FILTER (ABS(?v) > 5) }"
        )
        assert len(result) == 0

    def test_isuri(self, graph):
        result = query(
            graph, PREFIX + "SELECT ?o WHERE { ?s ex:link ?o FILTER (ISURI(?o)) }"
        )
        assert len(result) == 1

    def test_isliteral(self, graph):
        result = query(
            graph, PREFIX + "SELECT ?o WHERE { ?s ex:link ?o FILTER (ISLITERAL(?o)) }"
        )
        assert len(result) == 0

    def test_isnumeric(self, graph):
        result = query(
            graph, PREFIX + "SELECT ?v WHERE { ?s ?p ?v FILTER (ISNUMERIC(?v)) }"
        )
        assert len(result) == 2  # the two scores

    def test_isblank(self, graph):
        result = query(
            graph, PREFIX + "SELECT ?o WHERE { ?s ex:link ?o FILTER (ISBLANK(?o)) }"
        )
        assert len(result) == 0
