"""Tests for the persistent worker pool and the dictionary-encoded wire format.

Covers the pool lifecycle (lazy spawn, reuse across builds, idle shutdown,
crash retry → in-process fallback), the entity/space/graph wire codecs
(round trips, edge-case terms), fast vs fast-mp parity across seeds, the
no-pickled-entities shipping contract, and the federated bound-join fan-out.
"""

import os
import time

import pytest

from repro import obs
from repro.core import AlexConfig
from repro.core import workers as workers_mod
from repro.core.engine import AlexEngine
from repro.core.parallel_mp import build_space_parallel, run_partitions_parallel
from repro.core.workers import WorkerPool, effective_size, shared_pool, shutdown_shared_pool
from repro.datasets import PERSON_PROFILE, PairSpec, generate_pair
from repro.errors import ConfigError
from repro.features.space import FeatureSpace, decode_space_delta, encode_space_delta
from repro.federation.endpoint import Endpoint
from repro.federation.executor import FederatedEngine
from repro.federation.parallel import decode_graph, decode_links, encode_graph, encode_links
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity, entities_of
from repro.rdf.terms import BNode, Literal, URIRef
from repro.similarity.prepared import (
    decode_entities,
    encode_entities,
    wire_pack,
    wire_unpack,
)


def _pair(seed: int = 21, n_shared: int = 30):
    return generate_pair(
        PairSpec(
            name="workers",
            left_name="left",
            right_name="right",
            profiles=(PERSON_PROFILE,),
            n_shared=n_shared,
            n_left_only=10,
            n_right_only=10,
            noise_left=0.1,
            noise_right=0.25,
            seed=seed,
        )
    )


@pytest.fixture(scope="module")
def pair():
    return _pair()


@pytest.fixture(autouse=True)
def _clean_shared_pool():
    """Every test starts and ends without a shared pool (no process leaks)."""
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


# Task bodies must be module-level to cross the process boundary.


def _double(value):
    return value * 2


def _crash_in_worker(parent_pid):
    """Kill the hosting process — unless running in-process (the fallback)."""
    if os.getpid() != parent_pid:
        os._exit(137)
    return "survived"


def _boom():
    raise ValueError("task bug")


class TestWireFormat:
    def test_pack_unpack_round_trip(self):
        from array import array

        strings = ["", "héllo wörld", "a" * 300, "線形データ"]
        ints = array("I", [0, 1, 4294967295, 42])
        floats = array("d", [0.0, -1.5, 3.141592653589793])
        blob = wire_pack(strings, ints, floats)
        out_strings, out_ints, out_floats = wire_unpack(blob)
        assert out_strings == strings
        assert list(out_ints) == list(ints)
        assert list(out_floats) == list(floats)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            wire_unpack(b"not a wire blob at all")

    def test_entity_round_trip_edge_cases(self):
        p = URIRef("http://x/p")
        entities = [
            Entity(URIRef("http://x/a"), {p: (Literal("läbel", language="en"),)}),
            Entity(
                URIRef("http://x/b"),
                {
                    p: (
                        Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer"),
                        Literal("plain"),
                        URIRef("http://x/c"),
                        BNode("b42"),
                    ),
                    URIRef("http://x/q"): (),
                },
            ),
            Entity(BNode("subj"), {}),
        ]
        decoded = decode_entities(encode_entities(entities))
        assert decoded == entities
        # plain literal stays datatype-free (no xsd:string smuggled in)
        assert decoded[1].attributes[p][1].datatype is None

    def test_generated_entities_round_trip(self, pair):
        for graph in (pair.left, pair.right):
            entities = list(entities_of(graph))
            assert decode_entities(encode_entities(entities)) == entities

    def test_shared_terms_decode_shared(self, pair):
        entities = list(entities_of(pair.left))
        blob = encode_entities(entities)
        # dictionary encoding: the blob is much smaller than repeated terms
        assert len(blob) < sum(len(e.uri.value) * (1 + len(e.attributes)) * 4 for e in entities)
        decoded = decode_entities(blob)
        predicates = {id(p) for e in decoded for p in e.attributes}
        distinct = {p for e in decoded for p in e.attributes}
        # each distinct predicate decodes to ONE shared object
        assert len(predicates) == len(distinct)

    def test_space_delta_round_trip(self, pair):
        space = FeatureSpace.build(pair.left, pair.right)
        decoded = decode_space_delta(encode_space_delta(space))
        decoded.freeze()
        assert set(decoded.links()) == set(space.links())
        for link in space.links():
            assert decoded.feature_set(link) == space.feature_set(link)
        assert decoded.total_pairs_considered == space.total_pairs_considered

    def test_graph_and_links_round_trip(self, pair):
        graph = decode_graph(encode_graph(pair.left), name="clone")
        assert len(graph) == len(pair.left)
        assert set(graph.triples()) == set(pair.left.triples())
        links = pair.ground_truth.snapshot()
        assert decode_links(encode_links(links)).snapshot() == links


class TestPoolLifecycle:
    def test_effective_size_clamps_to_cpus(self):
        cpus = effective_size(None)
        assert cpus >= 1
        assert effective_size(0) == cpus
        assert effective_size(10_000) <= cpus
        assert effective_size(1) == 1

    def test_lazy_spawn_and_order_preserved(self):
        pool = WorkerPool(2, name="t-lazy")
        try:
            assert pool.stats()["alive"] is False  # nothing spawned yet
            results = pool.run_tasks(_double, [(i,) for i in range(7)])
            assert results == [i * 2 for i in range(7)]
            assert pool.stats()["alive"] is True
            assert pool.stats()["generation"] == 1
        finally:
            pool.shutdown()
        assert pool.stats()["alive"] is False

    def test_pool_reused_across_builds_zero_new_spawns(self, pair):
        left = list(entities_of(pair.left))
        right = list(entities_of(pair.right))
        first = FeatureSpace.build(left, right, workers=2)
        pool = shared_pool(2)
        generation = pool.stats()["generation"]
        pids = pool.worker_pids()
        second = FeatureSpace.build(left, right, workers=2)
        assert pool.stats()["generation"] == generation  # zero new spawns
        assert pool.worker_pids() == pids
        assert set(second.links()) == set(first.links())

    def test_shared_pool_grows_but_never_shrinks(self):
        small = shared_pool(1)
        assert shared_pool(1) is small
        bigger = shared_pool(2)
        if effective_size(2) > 1:  # on a 1-core box the sizes tie
            assert bigger is not small
        assert shared_pool(1) is bigger  # smaller request reuses

    def test_idle_timeout_shuts_workers_down(self):
        pool = WorkerPool(1, idle_timeout=0.2, name="t-idle")
        try:
            pool.run_tasks(_double, [(1,)])
            assert pool.stats()["alive"] is True
            deadline = time.monotonic() + 5.0
            while pool.stats()["alive"] and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.stats()["alive"] is False
            # transparent respawn on next use
            assert pool.run_tasks(_double, [(2,)]) == [4]
            assert pool.stats()["generation"] == 2
        finally:
            pool.shutdown()

    def test_closed_pool_refuses_work(self):
        pool = WorkerPool(1, name="t-closed")
        pool.shutdown()
        with pytest.raises(ConfigError):
            pool.run_tasks(_double, [(1,)])

    def test_bad_idle_timeout_rejected(self):
        with pytest.raises(ConfigError):
            WorkerPool(1, idle_timeout=0.0)

    def test_engine_close_shuts_shared_pool(self, pair):
        space = FeatureSpace.build(pair.left, pair.right)
        engine = AlexEngine(space, LinkSet(), AlexConfig(episode_size=10, pool_workers=2))
        pool = engine.pool()
        pool.run_tasks(_double, [(3,)])
        assert pool.stats()["alive"] is True
        engine.close()
        assert pool.stats()["alive"] is False
        assert workers_mod._shared is None

    def test_config_validates_pool_fields(self):
        with pytest.raises(ConfigError):
            AlexConfig(episode_size=10, pool_workers=-1)
        with pytest.raises(ConfigError):
            AlexConfig(episode_size=10, pool_idle_timeout=0.0)


class TestCrashRobustness:
    def test_crashing_task_falls_back_in_process(self):
        pool = WorkerPool(1, name="t-crash")
        try:
            with obs.use_registry(obs.Registry("crash")) as registry:
                results = pool.run_tasks(_crash_in_worker, [(os.getpid(),)], label="boom")
                assert results == ["survived"]
                snapshot = registry.snapshot()
            assert obs.counter_total(snapshot, "alex.pool.fallback") == 1
            stats = pool.stats()
            assert stats["fallbacks"] == 1
            assert stats["retries"] >= 1  # it was retried on a respawn first
        finally:
            pool.shutdown()

    def test_pool_usable_after_crash(self):
        pool = WorkerPool(1, name="t-recover")
        try:
            pool.run_tasks(_crash_in_worker, [(os.getpid(),)])
            assert pool.run_tasks(_double, [(21,)]) == [42]
        finally:
            pool.shutdown()

    def test_ordinary_exceptions_propagate(self):
        pool = WorkerPool(1, name="t-raise")
        try:
            with pytest.raises(ValueError, match="task bug"):
                pool.run_tasks(_boom, [()])
            assert pool.stats()["fallbacks"] == 0
        finally:
            pool.shutdown()


class TestBuildParity:
    @pytest.mark.parametrize("seed", [7, 21, 99])
    def test_fast_mp_parity_across_seeds(self, seed):
        bundle = _pair(seed=seed, n_shared=20)
        left = list(entities_of(bundle.left))
        right = list(entities_of(bundle.right))
        reference = FeatureSpace.build(left, right, workers=1)
        candidate = FeatureSpace.build(left, right, workers=2)
        assert set(candidate.links()) == set(reference.links())
        for link in reference.links():
            assert candidate.feature_set(link) == reference.feature_set(link)
        assert candidate.total_pairs_considered == reference.total_pairs_considered

    def test_partitions_ship_as_arrays_never_entities(self, pair):
        """The shipping contract: every task element crossing the process
        boundary is wire bytes or a scalar — never an Entity object."""
        left = list(entities_of(pair.left))
        right = list(entities_of(pair.right))
        shipped = []
        pool = WorkerPool(2, name="t-inspect")
        original = pool.run_tasks

        def recording(fn, tasks, label="tasks"):
            shipped.extend(tasks)
            return original(fn, tasks, label)

        pool.run_tasks = recording
        try:
            build_space_parallel(left, right, workers=2, pool=pool)
        finally:
            pool.shutdown()
        assert shipped, "expected the build to go through the pool"
        for task in shipped:
            for element in task:
                assert isinstance(element, (bytes, int, float, bool, str)), element
                assert not isinstance(element, Entity)

    def test_build_stats_recorded(self, pair):
        left = list(entities_of(pair.left))
        right = list(entities_of(pair.right))
        stats = []
        pool = WorkerPool(2, name="t-stats")
        try:
            build_space_parallel(left, right, workers=2, pool=pool, stats_out=stats)
        finally:
            pool.shutdown()
        assert len(stats) == 2
        assert sum(s.pairs_considered for s in stats) == len(left) * len(right)
        for s in stats:
            assert s.bytes_shipped > 0
            assert s.wall_seconds >= 0.0
            assert 0 <= s.pairs_admitted <= s.pairs_considered

    def test_episode_partitions_share_the_pool(self, pair):
        from repro.features import build_partitioned_spaces
        from repro.paris import paris_links

        spaces = build_partitioned_spaces(pair.left, pair.right, 2)
        initial = paris_links(pair.left, pair.right, 0.8)
        config = AlexConfig(episode_size=10, seed=5)
        pool = shared_pool(2)
        generation_before = pool.stats()["generation"]
        for _ in range(2):
            run_partitions_parallel(
                spaces, initial, pair.ground_truth, config,
                episode_size=10, max_episodes=2, max_workers=2,
            )
        after = shared_pool(2)
        assert after is pool
        # at most one spawn (lazy first use); the second run reuses it
        assert after.stats()["generation"] <= generation_before + 1
        assert after.stats()["batches"] >= 2


class TestFederationFanOut:
    def _canonical(self, result):
        return sorted(
            (
                tuple(sorted((v.name, t.n3()) for v, t in row.bindings.items())),
                tuple(sorted(str(link) for link in row.links_used)),
            )
            for row in result.rows
        )

    def test_fan_out_matches_sequential(self, pair):
        links = pair.ground_truth
        predicates = sorted(pair.left.predicates(), key=str)
        query = (
            f"SELECT ?s ?o ?o2 WHERE {{ ?s <{predicates[0].value}> ?o . "
            f"?s <{predicates[1].value}> ?o2 }}"
        )
        sequential = FederatedEngine(
            [Endpoint(pair.left, "L"), Endpoint(pair.right, "R")], links
        )
        fanned = FederatedEngine(
            [Endpoint(pair.left, "L"), Endpoint(pair.right, "R")], links, pool_workers=2
        )
        result_seq = sequential.select(query)
        result_fan = fanned.select(query)
        assert self._canonical(result_fan) == self._canonical(result_seq)
        assert [e.request_count for e in fanned.endpoints] == [
            e.request_count for e in sequential.endpoints
        ]

    def test_small_solution_sets_stay_in_process(self, pair):
        predicates = sorted(pair.left.predicates(), key=str)
        query = f"SELECT ?s ?o WHERE {{ <{next(iter(pair.left.entities())).value}> <{predicates[0].value}> ?o . ?s <{predicates[0].value}> ?o }}"
        engine = FederatedEngine([Endpoint(pair.left, "L")], pool_workers=2)
        engine.select(f"SELECT ?s WHERE {{ ?s <{predicates[0].value}> ?o }}")
        # one-solution joins never touched the pool: no shared pool exists
        assert workers_mod._shared is None or workers_mod._shared.stats()["batches"] == 0
