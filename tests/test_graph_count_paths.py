"""Parity tests for Graph.count's indexed fast paths (satellite of the tracing PR).

``Graph.count`` answers (s, p), (p,), and (p, o) lookups straight from the
SPO/POS indexes instead of iterating matches. These property tests pin each
fast path to the generic ``triples()`` scan, and check that
``optimizer.estimate_cardinality`` — the main consumer — reports numbers
consistent with those counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.rdf.triples import Triple
from repro.sparql.ast import TriplePattern, Var
from repro.sparql.optimizer import estimate_cardinality

# Small alphabets on purpose: collisions are what exercise the index paths.
local = st.text(alphabet="abc", min_size=1, max_size=2)
uris = st.builds(lambda name: URIRef("http://x/" + name), local)
literals = st.builds(Literal, st.integers(0, 3))
objects = st.one_of(uris, literals)
triples = st.builds(Triple, uris, uris, objects)
triple_lists = st.lists(triples, max_size=40)


def brute_count(graph, subject=None, predicate=None, object=None):
    return sum(1 for _ in graph.triples(subject, predicate, object))


class TestCountFastPaths:
    @given(triple_lists, uris, objects)
    def test_bound_po_matches_generic_scan(self, items, p, o):
        graph = Graph(triples=items)
        assert graph.count(predicate=p, object=o) == brute_count(graph, predicate=p, object=o)

    @given(triple_lists, uris, uris)
    def test_bound_sp_matches_generic_scan(self, items, s, p):
        graph = Graph(triples=items)
        assert graph.count(s, p) == brute_count(graph, subject=s, predicate=p)

    @given(triple_lists, uris)
    def test_bound_p_matches_generic_scan(self, items, p):
        graph = Graph(triples=items)
        assert graph.count(predicate=p) == brute_count(graph, predicate=p)

    @given(triple_lists)
    @settings(max_examples=30)
    def test_every_stored_triple_counted_by_each_path(self, items):
        graph = Graph(triples=items)
        for t in set(items):
            assert graph.count(t.subject, t.predicate) >= 1
            assert graph.count(predicate=t.predicate) >= 1
            assert graph.count(predicate=t.predicate, object=t.object) >= 1

    @given(triple_lists, uris, objects)
    @settings(max_examples=30)
    def test_po_count_survives_removal(self, items, p, o):
        graph = Graph(triples=items)
        for t in list(set(items))[: len(set(items)) // 2]:
            graph.remove(t)
        assert graph.count(predicate=p, object=o) == brute_count(graph, predicate=p, object=o)


class TestEstimateCardinalityUsesCounts:
    @given(triple_lists, uris, objects)
    def test_bound_po_estimate_is_exact_count(self, items, p, o):
        graph = Graph(triples=items)
        pattern = TriplePattern(Var("s"), p, o)
        estimate = estimate_cardinality(graph, pattern, set())
        assert estimate == float(graph.count(predicate=p, object=o))

    @given(triple_lists, uris, uris)
    def test_bound_sp_estimate_is_exact_count(self, items, s, p):
        graph = Graph(triples=items)
        pattern = TriplePattern(s, p, Var("o"))
        estimate = estimate_cardinality(graph, pattern, set())
        assert estimate == float(graph.count(s, p))

    @given(triple_lists, uris)
    def test_bound_p_estimate_is_exact_count(self, items, p):
        graph = Graph(triples=items)
        pattern = TriplePattern(Var("s"), p, Var("o"))
        estimate = estimate_cardinality(graph, pattern, set())
        # the free-variable fallthrough clamps at 1.0 even for absent predicates
        assert estimate == max(1.0, float(graph.count(predicate=p)))

    @given(triple_lists, uris)
    @settings(max_examples=30)
    def test_bound_var_object_discounts_but_stays_positive(self, items, p):
        graph = Graph(triples=items)
        pattern = TriplePattern(Var("s"), p, Var("o"))
        free = estimate_cardinality(graph, pattern, set())
        narrowed = estimate_cardinality(graph, pattern, {Var("o")})
        assert narrowed <= free
        assert narrowed >= 1.0
