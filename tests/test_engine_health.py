"""Tests for AlexEngine reporter lifecycle, idempotent close, and health()."""

import json
import time

import pytest

from repro import obs
from repro.core.config import AlexConfig
from repro.core.engine import AlexEngine
from repro.core.workers import peek_shared_pool, shutdown_shared_pool
from repro.errors import ConfigError
from repro.features.space import FeatureSpace
from repro.links import Link, LinkSet
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef


def _small_pair():
    left = Graph(name="left")
    right = Graph(name="right")
    name = URIRef("http://example.org/name")
    for index in range(4):
        left.add((URIRef(f"http://left.org/{index}"), name, Literal(f"n{index}")))
        right.add((URIRef(f"http://right.org/{index}"), name, Literal(f"n{index}")))
    return left, right


def _engine(**config_changes) -> tuple[AlexEngine, Graph, Graph]:
    left, right = _small_pair()
    space = FeatureSpace.build(left, right, theta=0.3)
    links = LinkSet(
        [Link(URIRef("http://left.org/0"), URIRef("http://right.org/0"))]
    )
    config = AlexConfig(episode_size=2, seed=7, **config_changes)
    return AlexEngine(space, links, config), left, right


class TestConfig:
    def test_reporting_off_by_default(self):
        config = AlexConfig(episode_size=10)
        assert config.report_interval == 0.0
        assert config.report_path is None

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigError, match="report_interval"):
            AlexConfig(episode_size=10, report_interval=-1.0)


class TestCloseIdempotence:
    def test_close_twice_is_safe(self):
        engine, _, _ = _engine()
        engine.close()
        engine.close()
        assert engine.closed

    def test_close_with_never_started_reporter(self, tmp_path):
        engine, _, _ = _engine(
            report_interval=60.0, report_path=str(tmp_path / "r.jsonl")
        )
        # Reporting configured but no feedback processed: reporter never
        # started; close must not create the sink or a thread.
        engine.close()
        engine.close()
        assert engine.closed
        assert not (tmp_path / "r.jsonl").exists()

    def test_close_stops_running_reporter(self, tmp_path):
        path = tmp_path / "r.jsonl"
        engine, _, _ = _engine(report_interval=60.0, report_path=str(path))
        link = Link(URIRef("http://left.org/1"), URIRef("http://right.org/1"))
        engine.process_feedback(link, positive=True)
        reporter = engine.reporter()
        assert reporter is not None and reporter.running
        engine.close()
        assert not reporter.running
        assert path.exists()  # header + final sample flushed on stop
        engine.close()  # second close: nothing left to stop


class TestReporterLifecycle:
    def test_no_reporter_without_config(self):
        engine, _, _ = _engine()
        assert engine.reporter() is None
        link = Link(URIRef("http://left.org/1"), URIRef("http://right.org/1"))
        engine.process_feedback(link, positive=True)
        assert engine.reporter() is None
        engine.close()

    def test_reporter_starts_lazily_on_feedback(self, tmp_path):
        path = tmp_path / "r.jsonl"
        engine, _, _ = _engine(report_interval=0.02, report_path=str(path))
        assert not path.exists()  # configured but not started yet
        link = Link(URIRef("http://left.org/1"), URIRef("http://right.org/1"))
        engine.process_feedback(link, positive=True)
        reporter = engine.reporter()
        assert reporter.running
        deadline = time.monotonic() + 2.0
        while reporter.samples_written < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        engine.close()
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) >= 3  # header + >=2 samples (interval + final)

    def test_reporter_returns_same_instance(self, tmp_path):
        engine, _, _ = _engine(
            report_interval=60.0, report_path=str(tmp_path / "r.jsonl")
        )
        assert engine.reporter() is engine.reporter()
        engine.close()


class TestHealth:
    def test_health_shape_and_status(self):
        engine, left, right = _engine()
        health = engine.health(graphs={"left": left, "right": right})
        assert health["status"] in ("ok", "degraded")
        assert set(health) == {
            "status", "engine", "pool", "caches", "trace",
            "reporter", "slowlog", "dictionaries",
        }
        assert health["engine"]["name"] == "alex"
        assert health["engine"]["closed"] is False
        assert health["caches"]["plan_cache"]["capacity"] >= 1
        assert "score_entries" in health["caches"]["similarity"]
        assert health["dictionaries"]["left"]["terms"] == len(left.dictionary)
        assert health["dictionaries"]["left"]["triples"] == len(left)
        assert health["reporter"]["configured"] is False
        assert health["slowlog"]["enabled"] is False
        engine.close()

    def test_health_is_json_serializable(self):
        engine, left, right = _engine()
        health = engine.health(graphs={"left": left, "right": right})
        assert json.loads(json.dumps(health)) == health
        engine.close()

    def test_health_does_not_spawn_pool(self):
        shutdown_shared_pool()
        engine, _, _ = _engine()
        health = engine.health()
        assert health["pool"] == {"spawned": False}
        assert peek_shared_pool() is None  # probing stayed side-effect-free
        engine.close()

    def test_health_reports_live_pool_stats(self):
        engine, _, _ = _engine()
        pool = engine.pool()
        pool.worker_pids()  # force a spawn
        health = engine.health()
        assert health["pool"]["spawned"] is True
        assert health["pool"]["size"] >= 1
        assert health["pool"]["alive"] is True
        engine.close()
        assert peek_shared_pool() is None  # close tore the shared pool down

    def test_health_reflects_reporter_and_slowlog(self, tmp_path):
        from repro.obs import slowlog

        path = tmp_path / "r.jsonl"
        engine, _, _ = _engine(report_interval=60.0, report_path=str(path))
        link = Link(URIRef("http://left.org/1"), URIRef("http://right.org/1"))
        engine.process_feedback(link, positive=True)
        slowlog.configure(threshold=0.5)
        try:
            health = engine.health()
        finally:
            slowlog.disable()
        assert health["reporter"]["configured"] is True
        assert health["reporter"]["running"] is True
        assert health["reporter"]["path"] == str(path)
        assert health["slowlog"]["enabled"] is True
        assert health["slowlog"]["threshold"] == 0.5
        engine.close()

    def test_health_degraded_on_trace_drops(self):
        from repro.obs import trace

        engine, _, _ = _engine()
        with obs.use_registry():
            tracer = trace.install(seed=0, capacity=2)
            for index in range(5):
                tracer.event("alex.link.discover", link=f"l{index}")
            health = engine.health()
            trace.uninstall()
        assert health["trace"]["installed"] is True
        assert health["trace"]["dropped"] > 0
        assert health["status"] == "degraded"
        engine.close()
