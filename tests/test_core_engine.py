"""Unit tests for the ALEX engine: exploration, credit, blacklist, rollback,
convergence, and the distinctiveness memory."""

import pytest

from repro.core import AlexConfig, AlexEngine, StateAction
from repro.core.distinctiveness import FeatureDistinctiveness
from repro.features import FeatureSpace
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")
NAME_KEY = (LEFT_NAME, RIGHT_NAME)


def left_entity(index: int, name: str) -> Entity:
    return Entity(URIRef(f"http://a/res/e{index}"), {LEFT_NAME: (Literal(name),)})


def right_entity(index: int, name: str) -> Entity:
    return Entity(URIRef(f"http://b/res/e{index}"), {RIGHT_NAME: (Literal(name),)})


def link(i: int, j: int) -> Link:
    return Link(URIRef(f"http://a/res/e{i}"), URIRef(f"http://b/res/e{j}"))


@pytest.fixture()
def space() -> FeatureSpace:
    """Five left and five right entities; pair (i, i) has name similarity 1.0
    and cross pairs share the surname token, giving mid-range scores. All
    exploration happens along the single (name, name) feature."""
    space = FeatureSpace(theta=0.3)
    names = ["Alpha Jones", "Bravo Jones", "Carol Jones", "Delta Jones", "Echo Jones"]
    lefts = [left_entity(i, name) for i, name in enumerate(names)]
    rights = [right_entity(i, name) for i, name in enumerate(names)]
    for left in lefts:
        for right in rights:
            space.add_pair(left, right)
    space.freeze()
    return space


def config(**overrides) -> AlexConfig:
    defaults = dict(episode_size=10, seed=1)
    defaults.update(overrides)
    return AlexConfig(**defaults)


class TestExploration:
    def test_positive_feedback_discovers_similar_links(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        discovered = engine.process_feedback(link(0, 0), positive=True)
        # the identity pairs all have (name, name) score 1.0, so exploring
        # around 1.0 finds the other correct links
        assert set(discovered) >= {link(i, i) for i in range(1, 5)}
        assert all(l in engine.candidates for l in discovered)

    def test_discovered_links_have_provenance(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        discovered = engine.process_feedback(link(0, 0), positive=True)
        for found in discovered:
            generators = engine.ledger.generators_of(found)
            assert StateAction(link(0, 0), NAME_KEY) in generators

    def test_positive_feedback_on_unknown_link_readds_it(self, space):
        engine = AlexEngine(space, LinkSet(), config())
        engine.process_feedback(link(2, 2), positive=True)
        assert link(2, 2) in engine.candidates

    def test_exploration_skips_existing_candidates(self, space):
        initial = LinkSet([link(i, i) for i in range(5)])
        engine = AlexEngine(space, initial, config())
        discovered = engine.process_feedback(link(0, 0), positive=True)
        assert discovered == []

    def test_link_outside_space_triggers_no_exploration(self, space):
        stray = Link(URIRef("http://a/res/zz"), URIRef("http://b/res/zz"))
        engine = AlexEngine(space, LinkSet([stray]), config())
        assert engine.process_feedback(stray, positive=True) == []


class TestNegativeFeedback:
    def test_negative_removes_and_blacklists(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 1)]), config())
        engine.process_feedback(link(0, 1), positive=False)
        assert link(0, 1) not in engine.candidates
        assert link(0, 1) in engine.blacklist

    def test_blacklisted_links_never_rediscovered(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0), link(1, 1)]), config())
        engine.process_feedback(link(0, 1), positive=False)
        discovered = engine.process_feedback(link(0, 0), positive=True)
        assert link(0, 1) not in discovered

    def test_blacklist_disabled(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 1)]), config(use_blacklist=False))
        engine.process_feedback(link(0, 1), positive=False)
        assert link(0, 1) not in engine.blacklist

    def test_evidence_tally_protects_approved_links(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        engine.process_feedback(link(0, 0), positive=True)
        engine.process_feedback(link(0, 0), positive=True)
        # one (erroneous) rejection does not outweigh two approvals
        engine.process_feedback(link(0, 0), positive=False)
        assert link(0, 0) in engine.candidates

    def test_majority_negative_removes(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        engine.process_feedback(link(0, 0), positive=True)
        engine.process_feedback(link(0, 0), positive=False)
        engine.process_feedback(link(0, 0), positive=False)
        assert link(0, 0) not in engine.candidates


class TestCreditAssignment:
    def test_first_visit_credit_flows_to_generator(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        discovered = engine.process_feedback(link(0, 0), positive=True)
        target = discovered[0]
        engine.process_feedback(target, positive=True)
        sa = StateAction(link(0, 0), NAME_KEY)
        assert engine.values.q(sa) == pytest.approx(1.0)

    def test_second_visit_in_episode_not_credited(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        discovered = engine.process_feedback(link(0, 0), positive=True)
        target = discovered[0]
        engine.process_feedback(target, positive=True)
        engine.process_feedback(target, positive=True)  # second visit
        sa = StateAction(link(0, 0), NAME_KEY)
        assert len(engine.values.returns(sa)) == 1

    def test_new_episode_is_new_first_visit(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        discovered = engine.process_feedback(link(0, 0), positive=True)
        target = discovered[0]
        engine.process_feedback(target, positive=True)
        engine.end_episode()
        engine.process_feedback(target, positive=True)
        sa = StateAction(link(0, 0), NAME_KEY)
        assert len(engine.values.returns(sa)) == 2

    def test_negative_reward_credited(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        discovered = engine.process_feedback(link(0, 0), positive=True)
        engine.process_feedback(discovered[0], positive=False)
        sa = StateAction(link(0, 0), NAME_KEY)
        assert engine.values.q(sa) == pytest.approx(-1.0)


class TestRollback:
    def make_engine(self, space, **overrides):
        settings = dict(
            episode_size=50,
            rollback_min_negatives=2,
            rollback_negative_fraction=0.6,
            seed=1,
        )
        settings.update(overrides)
        return AlexEngine(space, LinkSet([link(0, 0)]), AlexConfig(**settings))

    def test_rollback_removes_generated_links(self, space):
        engine = self.make_engine(space)
        discovered = engine.process_feedback(link(0, 0), positive=True)
        # reject enough of the discovered links to trip the rollback
        engine.process_feedback(discovered[0], positive=False)
        engine.process_feedback(discovered[1], positive=False)
        for remaining in discovered[2:]:
            assert remaining not in engine.candidates

    def test_rolled_back_links_not_blacklisted(self, space):
        engine = self.make_engine(space)
        discovered = engine.process_feedback(link(0, 0), positive=True)
        engine.process_feedback(discovered[0], positive=False)
        engine.process_feedback(discovered[1], positive=False)
        for remaining in discovered[2:]:
            assert remaining not in engine.blacklist

    def test_rollback_spares_confirmed_links(self, space):
        engine = self.make_engine(space)
        discovered = engine.process_feedback(link(0, 0), positive=True)
        saved = discovered[-1]
        engine.process_feedback(saved, positive=True)  # confirm
        engine.process_feedback(discovered[0], positive=False)
        engine.process_feedback(discovered[1], positive=False)
        assert saved in engine.candidates

    def test_rollback_disabled(self, space):
        engine = self.make_engine(space, use_rollback=False)
        discovered = engine.process_feedback(link(0, 0), positive=True)
        engine.process_feedback(discovered[0], positive=False)
        engine.process_feedback(discovered[1], positive=False)
        assert discovered[-1] in engine.candidates

    def test_rollback_counted_in_stats(self, space):
        engine = self.make_engine(space)
        discovered = engine.process_feedback(link(0, 0), positive=True)
        engine.process_feedback(discovered[0], positive=False)
        engine.process_feedback(discovered[1], positive=False)
        stats = engine.end_episode()
        assert stats.rollbacks == 1


class TestEpisodesAndConvergence:
    def test_policy_improved_at_episode_end(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        discovered = engine.process_feedback(link(0, 0), positive=True)
        engine.process_feedback(discovered[0], positive=True)
        engine.end_episode()
        assert engine.policy.greedy_action(link(0, 0)) == NAME_KEY

    def test_unchanged_episode_converges(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 1)]), config())
        engine.end_episode()  # nothing happened
        assert engine.converged
        assert engine.converged_at == 1

    def test_patience_delays_convergence(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 1)]), config(convergence_patience=2))
        engine.end_episode()
        assert not engine.converged
        engine.end_episode()
        assert engine.converged_at == 2

    def test_change_resets_patience(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config(convergence_patience=2))
        engine.end_episode()  # unchanged (streak 1)
        engine.process_feedback(link(0, 0), positive=True)  # discovers links
        engine.end_episode()  # changed (streak 0)
        assert not engine.converged

    def test_relaxed_convergence_threshold(self, space):
        initial = LinkSet([link(i, i) for i in range(5)] + [link(0, 1), link(1, 0)])
        engine = AlexEngine(space, initial, config())
        # removing 1 of 7 links is ~14% change: above the 5% threshold
        engine.process_feedback(link(0, 1), positive=False)
        engine.end_episode()
        assert engine.relaxed_converged_at is None

    def test_stopped_at_max_episodes(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config(max_episodes=2))
        engine.process_feedback(link(0, 0), positive=True)
        engine.end_episode()
        engine.process_feedback(link(0, 1), positive=False)
        engine.end_episode()
        assert engine.stopped

    def test_episode_full(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config(episode_size=2))
        assert not engine.episode_full()
        engine.process_feedback(link(0, 0), positive=True)
        engine.process_feedback(link(0, 0), positive=True)
        assert engine.episode_full()

    def test_owns(self, space):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), config())
        assert engine.owns(link(0, 0))
        assert engine.owns(link(3, 3))  # in space
        assert not engine.owns(Link(URIRef("http://a/res/zz"), URIRef("http://b/res/zz")))


class TestDistinctiveness:
    def test_poisoned_feature_filtered(self):
        memory = FeatureDistinctiveness(min_negatives=3, negative_fraction=0.6)
        bad = NAME_KEY
        good = (URIRef("http://a/ont/x"), URIRef("http://b/ont/y"))
        for _ in range(5):
            memory.record(bad, -1.0, positive=False)
        memory.record(good, 1.0, positive=True)
        assert memory.is_distinctive(bad) is False
        assert memory.filter_actions([bad, good]) == [good]

    def test_filter_never_empties(self):
        memory = FeatureDistinctiveness(min_negatives=1, negative_fraction=0.1)
        memory.record(NAME_KEY, -1.0, positive=False)
        assert memory.filter_actions([NAME_KEY]) == [NAME_KEY]

    def test_best_known(self):
        memory = FeatureDistinctiveness(min_negatives=3, negative_fraction=0.6)
        a = (URIRef("http://a/ont/a"), URIRef("http://b/ont/a"))
        b = (URIRef("http://a/ont/b"), URIRef("http://b/ont/b"))
        memory.record(a, 1.0, positive=True)
        memory.record(b, -1.0, positive=False)
        assert memory.best_known([a, b]) == a
        assert memory.best_known([]) is None

    def test_positive_feedback_keeps_feature_distinctive(self):
        memory = FeatureDistinctiveness(min_negatives=3, negative_fraction=0.8)
        for _ in range(3):
            memory.record(NAME_KEY, -1.0, positive=False)
        for _ in range(2):
            memory.record(NAME_KEY, 1.0, positive=True)
        # 3 of 5 = 60% negative, below the 80% bar
        assert memory.is_distinctive(NAME_KEY) is True
