"""Tests for graph statistics (and the CLI describe command)."""

import pytest

from repro.cli import main
from repro.rdf import turtle
from repro.rdf.graph import Graph
from repro.rdf.stats import graph_statistics


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://x/> .
        ex:a ex:name "A" ; ex:knows ex:b , ex:c .
        ex:b ex:name "B" ; ex:note [ ex:label "anon" ] .
        """,
        name="testgraph",
    )


class TestGraphStatistics:
    def test_counts(self, graph):
        stats = graph_statistics(graph)
        assert stats.triple_count == len(graph)
        assert stats.entity_count == 3  # ex:a, ex:b, the bnode
        assert stats.predicate_count == 4

    def test_object_kinds(self, graph):
        stats = graph_statistics(graph)
        assert stats.literal_object_count == 3  # "A", "B", "anon"
        assert stats.uri_object_count == 2  # ex:b, ex:c
        assert stats.bnode_count == 2  # one bnode object + one bnode subject

    def test_histogram_sorted(self, graph):
        stats = graph_statistics(graph)
        counts = [count for _, count in stats.predicate_histogram]
        assert counts == sorted(counts, reverse=True)
        assert stats.predicate_histogram[0][1] == 2  # 'knows' and 'name' tie at 2

    def test_average_out_degree(self, graph):
        stats = graph_statistics(graph)
        assert stats.average_out_degree == pytest.approx(len(graph) / 3)

    def test_empty_graph(self):
        stats = graph_statistics(Graph(name="empty"))
        assert stats.triple_count == 0
        assert stats.average_out_degree == 0.0

    def test_render(self, graph):
        text = graph_statistics(graph).render()
        assert "testgraph" in text
        assert "top predicates" in text


class TestDescribeCommand:
    def test_describe_file(self, tmp_path, capsys, graph):
        from repro.rdf import ntriples

        path = str(tmp_path / "g.nt")
        ntriples.dump_file(graph, path)
        code = main(["describe", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "triples:" in out

    def test_describe_missing_file(self, capsys):
        code = main(["describe", "/nope/missing.nt"])
        assert code == 1
