"""Unit tests for the synthetic dataset generator and catalog."""

import random

import pytest

from repro.datasets import (
    DRUG_PROFILE,
    PERSON_PROFILE,
    PairSpec,
    catalog_keys,
    generate_pair,
    load_pair,
    pair_spec,
    table1_stats,
)
from repro.datasets.vocab import (
    abbreviate_token,
    coin_code,
    coin_person_name,
    coin_word,
    drop_token,
    heavy_mutation,
    perturb_name,
    perturb_year,
    reorder_tokens,
    typo,
)
from repro.errors import DatasetError
from repro.rdf.namespaces import RDF_TYPE


def small_spec(**overrides) -> PairSpec:
    defaults = dict(
        name="test_pair",
        left_name="left",
        right_name="right",
        profiles=(PERSON_PROFILE,),
        n_shared=20,
        n_left_only=10,
        n_right_only=5,
        seed=3,
    )
    defaults.update(overrides)
    return PairSpec(**defaults)


class TestVocab:
    def test_coin_word_deterministic(self):
        assert coin_word(random.Random(1)) == coin_word(random.Random(1))

    def test_coin_person_name_shape(self):
        name = coin_person_name(random.Random(2))
        assert len(name.split()) == 2
        assert name[0].isupper()

    def test_coin_code_length(self):
        assert len(coin_code(random.Random(3), length=7)) == 7

    def test_typo_changes_text(self):
        rng = random.Random(4)
        assert typo(rng, "lebron james", edits=2) != "lebron james"

    def test_typo_short_string_safe(self):
        assert typo(random.Random(0), "a") == "a"

    def test_abbreviate_token(self):
        out = abbreviate_token(random.Random(5), "Kevin Durant")
        assert "." in out

    def test_token_edits_preserve_other_tokens(self):
        rng = random.Random(6)
        dropped = drop_token(rng, "one two three")
        assert len(dropped.split()) == 2
        reordered = reorder_tokens(rng, "alpha beta")
        assert set(reordered.split()) == {"alpha", "beta"}

    def test_single_token_edits_noop(self):
        rng = random.Random(0)
        assert drop_token(rng, "single") == "single"
        assert reorder_tokens(rng, "single") == "single"
        assert abbreviate_token(rng, "single") == "single"

    def test_perturb_name_zero_strength_identity(self):
        assert perturb_name(random.Random(0), "LeBron James", 0.0) == "LeBron James"

    def test_perturb_name_never_empty(self):
        rng = random.Random(7)
        for _ in range(100):
            assert perturb_name(rng, "ab cd", 1.0).strip()

    def test_perturb_year_zero_strength(self):
        assert perturb_year(random.Random(0), 1984, 0.0) == 1984

    def test_heavy_mutation_differs(self):
        rng = random.Random(8)
        assert heavy_mutation(rng, "LeBron James") != "LeBron James"


class TestGenerator:
    def test_ground_truth_size(self):
        pair = generate_pair(small_spec())
        assert len(pair.ground_truth) == 20

    def test_entity_counts(self):
        pair = generate_pair(small_spec())
        assert sum(1 for _ in pair.left.entities()) == 30
        assert sum(1 for _ in pair.right.entities()) == 25

    def test_deterministic_by_seed(self):
        a = generate_pair(small_spec())
        b = generate_pair(small_spec())
        assert set(a.left.triples()) == set(b.left.triples())
        assert a.ground_truth == b.ground_truth

    def test_different_seed_different_data(self):
        a = generate_pair(small_spec(seed=1))
        b = generate_pair(small_spec(seed=2))
        assert set(a.left.triples()) != set(b.left.triples())

    def test_every_entity_typed(self):
        pair = generate_pair(small_spec())
        for graph in (pair.left, pair.right):
            for entity in graph.entities():
                assert graph.value(entity, RDF_TYPE) is not None

    def test_schemas_differ_between_sides(self):
        pair = generate_pair(small_spec())
        left_predicates = {p.value for p in pair.left.predicates()}
        right_predicates = {p.value for p in pair.right.predicates()}
        assert left_predicates != right_predicates

    def test_ground_truth_points_into_graphs(self):
        pair = generate_pair(small_spec())
        left_entities = set(pair.left.entities())
        right_entities = set(pair.right.entities())
        for gt_link in pair.ground_truth:
            assert gt_link.left in left_entities
            assert gt_link.right in right_entities

    def test_noise_increases_divergence(self):
        from repro.features import build_feature_set
        from repro.rdf.entity import Entity

        def average_name_score(noise: float) -> float:
            pair = generate_pair(small_spec(noise_left=0.0, noise_right=noise, seed=5))
            scores = []
            for gt_link in pair.ground_truth:
                left = Entity.from_graph(pair.left, gt_link.left)
                right = Entity.from_graph(pair.right, gt_link.right)
                fs = build_feature_set(left, right, theta=0.0)
                if fs:
                    scores.append(max(fs.values()))
            return sum(scores) / len(scores)

        assert average_name_score(0.8) < average_name_score(0.05)

    def test_invalid_specs(self):
        with pytest.raises(DatasetError):
            small_spec(n_shared=0)
        with pytest.raises(DatasetError):
            small_spec(noise_left=1.5)
        with pytest.raises(DatasetError):
            small_spec(profiles=())


class TestCatalog:
    def test_all_keys_have_specs(self):
        for key in catalog_keys():
            spec = pair_spec(key)
            assert spec.name == key

    def test_unknown_key(self):
        with pytest.raises(DatasetError):
            pair_spec("nope")

    def test_load_pair_smallest(self):
        pair = load_pair("opencyc_nba_nytimes")
        assert len(pair.ground_truth) == 20
        assert len(pair.left) > 0 and len(pair.right) > 0

    def test_seed_override(self):
        default = load_pair("opencyc_nba_nytimes")
        reseeded = load_pair("opencyc_nba_nytimes", seed=999)
        assert set(default.left.triples()) != set(reseeded.left.triples())

    def test_table1_ordering(self):
        stats = table1_stats()
        assert stats[0].dataset in ("dbpedia", "opencyc")
        triples = [s.triples for s in stats]
        assert triples == sorted(triples, reverse=True)
        assert len(stats) == 8


class TestDrugProfile:
    def test_identifying_code_attribute(self):
        codes = [a for a in DRUG_PROFILE.attributes if a.identifying]
        assert codes and codes[0].kind.value == "code"

    def test_attribute_lookup(self):
        assert DRUG_PROFILE.attribute("name").left_name == "label"
        with pytest.raises(KeyError):
            DRUG_PROFILE.attribute("nope")
