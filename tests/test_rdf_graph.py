"""Unit tests for the indexed triple store."""

import pytest

from repro.errors import TermError
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Literal, URIRef
from repro.rdf.triples import Triple

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


def triple(s: str, p: str, o) -> Triple:
    obj = o if not isinstance(o, str) else uri(o)
    return Triple(uri(s), uri(p), obj)


@pytest.fixture()
def graph() -> Graph:
    g = Graph(name="test")
    g.add(triple("lebron", "plays", "heat"))
    g.add(triple("lebron", "name", Literal("LeBron James")))
    g.add(triple("durant", "plays", "okc"))
    g.add(triple("durant", "name", Literal("Kevin Durant")))
    g.add(triple("heat", "inCity", "miami"))
    return g


class TestMutation:
    def test_add_returns_true_when_new(self):
        g = Graph()
        assert g.add(triple("a", "p", "b")) is True
        assert g.add(triple("a", "p", "b")) is False
        assert len(g) == 1

    def test_add_all_counts_new(self, graph):
        added = graph.add_all([triple("lebron", "plays", "heat"), triple("x", "p", "y")])
        assert added == 1

    def test_remove_present(self, graph):
        assert graph.remove(triple("heat", "inCity", "miami")) is True
        assert len(graph) == 4
        assert triple("heat", "inCity", "miami") not in graph

    def test_remove_absent(self, graph):
        assert graph.remove(triple("nope", "p", "q")) is False
        assert len(graph) == 5

    def test_remove_cleans_indexes(self):
        g = Graph()
        t = triple("a", "p", "b")
        g.add(t)
        g.remove(t)
        assert list(g.triples()) == []
        assert list(g.subjects()) == []
        assert list(g.predicates()) == []
        # internal maps must not keep empty shells
        assert not g._spo and not g._pos and not g._osp

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert not graph

    def test_add_validates_positions(self):
        g = Graph()
        with pytest.raises(TermError):
            g.add(Triple(Literal("x"), uri("p"), uri("o")))  # type: ignore[arg-type]
        with pytest.raises(TermError):
            g.add(Triple(uri("s"), Literal("p"), uri("o")))  # type: ignore[arg-type]


class TestPatternMatching:
    def test_fully_bound(self, graph):
        assert len(list(graph.triples(uri("lebron"), uri("plays"), uri("heat")))) == 1
        assert len(list(graph.triples(uri("lebron"), uri("plays"), uri("okc")))) == 0

    def test_s_bound(self, graph):
        assert len(list(graph.triples(subject=uri("lebron")))) == 2

    def test_p_bound(self, graph):
        assert len(list(graph.triples(predicate=uri("plays")))) == 2

    def test_o_bound(self, graph):
        assert len(list(graph.triples(object=uri("heat")))) == 1

    def test_sp_bound(self, graph):
        matches = list(graph.triples(uri("durant"), uri("name")))
        assert matches == [triple("durant", "name", Literal("Kevin Durant"))]

    def test_so_bound(self, graph):
        assert len(list(graph.triples(subject=uri("lebron"), object=uri("heat")))) == 1

    def test_po_bound(self, graph):
        assert len(list(graph.triples(predicate=uri("plays"), object=uri("okc")))) == 1

    def test_all_wildcards(self, graph):
        assert len(list(graph.triples())) == 5

    def test_missing_subject(self, graph):
        assert list(graph.triples(subject=uri("ghost"))) == []


class TestCounting:
    def test_count_total(self, graph):
        assert graph.count() == 5

    def test_count_sp(self, graph):
        assert graph.count(uri("lebron"), uri("plays")) == 1

    def test_count_predicate(self, graph):
        assert graph.count(predicate=uri("name")) == 2

    def test_count_matches_iteration(self, graph):
        assert graph.count(object=uri("heat")) == len(list(graph.triples(object=uri("heat"))))


class TestAccessors:
    def test_subjects(self, graph):
        assert set(graph.subjects(predicate=uri("plays"))) == {uri("lebron"), uri("durant")}

    def test_predicates_of_subject(self, graph):
        assert set(graph.predicates(subject=uri("lebron"))) == {uri("plays"), uri("name")}

    def test_objects(self, graph):
        assert set(graph.objects(uri("lebron"), uri("plays"))) == {uri("heat")}

    def test_value(self, graph):
        assert graph.value(uri("heat"), uri("inCity")) == uri("miami")
        assert graph.value(uri("heat"), uri("nope")) is None

    def test_predicate_objects(self, graph):
        pairs = dict(graph.predicate_objects(uri("durant")))
        assert pairs[uri("plays")] == uri("okc")

    def test_entities(self, graph):
        assert set(graph.entities()) == {uri("lebron"), uri("durant"), uri("heat")}


class TestSetProtocol:
    def test_contains(self, graph):
        assert triple("lebron", "plays", "heat") in graph
        assert triple("lebron", "plays", "okc") not in graph

    def test_iter(self, graph):
        assert set(graph) == set(graph.triples())

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(triple("new", "p", "q"))
        assert len(clone) == 6
        assert len(graph) == 5

    def test_union(self, graph):
        other = Graph(triples=[triple("x", "p", "y")])
        merged = graph | other
        assert len(merged) == 6

    def test_bnode_subjects_supported(self):
        g = Graph()
        node = BNode("anon")
        g.add(Triple(node, uri("p"), Literal("v")))
        assert g.count(subject=node) == 1
