"""Unit tests for namespaces and entity views."""

import pytest

from repro.errors import RDFError
from repro.rdf import turtle
from repro.rdf.entity import Entity, entities_of
from repro.rdf.graph import Graph
from repro.rdf.namespaces import FOAF, Namespace, NamespaceManager, OWL_SAMEAS
from repro.rdf.terms import Literal, URIRef
from repro.rdf.triples import Triple


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://x/")
        assert ns.name == URIRef("http://x/name")

    def test_item_access(self):
        ns = Namespace("http://x/")
        assert ns["with-dash"] == URIRef("http://x/with-dash")

    def test_contains(self):
        ns = Namespace("http://x/")
        assert URIRef("http://x/a") in ns
        assert URIRef("http://y/a") not in ns

    def test_empty_base_rejected(self):
        with pytest.raises(RDFError):
            Namespace("")

    def test_well_known_sameas(self):
        assert OWL_SAMEAS.value == "http://www.w3.org/2002/07/owl#sameAs"


class TestNamespaceManager:
    def test_defaults_present(self):
        manager = NamespaceManager()
        assert "foaf" in manager
        assert manager.expand("foaf:name") == FOAF.name

    def test_bind_and_expand(self):
        manager = NamespaceManager(include_defaults=False)
        manager.bind("ex", "http://x/")
        assert manager.expand("ex:a") == URIRef("http://x/a")

    def test_expand_unbound(self):
        with pytest.raises(RDFError):
            NamespaceManager(include_defaults=False).expand("nope:a")

    def test_expand_requires_colon(self):
        with pytest.raises(RDFError):
            NamespaceManager().expand("plain")

    def test_compact_longest_match(self):
        manager = NamespaceManager(include_defaults=False)
        manager.bind("a", "http://x/")
        manager.bind("b", "http://x/deep/")
        assert manager.compact(URIRef("http://x/deep/name")) == "b:name"

    def test_compact_no_match(self):
        manager = NamespaceManager(include_defaults=False)
        assert manager.compact(URIRef("http://unknown/x")) is None

    def test_compact_refuses_non_roundtrippable(self):
        manager = NamespaceManager(include_defaults=False)
        manager.bind("x", "http://x/")
        assert manager.compact(URIRef("http://x/deep/name")) is None


class TestEntity:
    @pytest.fixture()
    def graph(self) -> Graph:
        return turtle.load(
            """
            @prefix ex: <http://x/> .
            ex:lebron ex:name "LeBron James" ; ex:name "King James" ;
                      ex:birth 1984 ; ex:team ex:heat .
            ex:empty ex:note "alone" .
            """
        )

    def test_from_graph(self, graph):
        entity = Entity.from_graph(graph, URIRef("http://x/lebron"))
        assert entity.arity == 3
        assert len(entity) == 4  # four attribute values total

    def test_multivalued_attribute(self, graph):
        entity = Entity.from_graph(graph, URIRef("http://x/lebron"))
        names = entity.literal_values(URIRef("http://x/name"))
        assert {n.lexical for n in names} == {"LeBron James", "King James"}

    def test_snapshot_isolated_from_graph(self, graph):
        entity = Entity.from_graph(graph, URIRef("http://x/lebron"))
        graph.add(Triple(URIRef("http://x/lebron"), URIRef("http://x/new"), Literal("x")))
        assert URIRef("http://x/new") not in entity

    def test_objects_of_missing_predicate(self, graph):
        entity = Entity.from_graph(graph, URIRef("http://x/lebron"))
        assert entity.objects(URIRef("http://x/none")) == ()

    def test_pairs_enumerates_all(self, graph):
        entity = Entity.from_graph(graph, URIRef("http://x/lebron"))
        assert len(list(entity.pairs())) == 4

    def test_entities_of(self, graph):
        views = list(entities_of(graph))
        assert {str(view.uri) for view in views} == {"http://x/lebron", "http://x/empty"}

    def test_deterministic_object_order(self, graph):
        first = Entity.from_graph(graph, URIRef("http://x/lebron"))
        second = Entity.from_graph(graph, URIRef("http://x/lebron"))
        assert first.attributes == second.attributes
