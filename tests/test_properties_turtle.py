"""Property-based round-trip tests for Turtle serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import turtle
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import Literal, URIRef, XSD_BOOLEAN, XSD_INTEGER
from repro.rdf.triples import Triple

local = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=8
)
uris = st.builds(lambda name: URIRef("http://example.org/ns/" + name), local)
safe_text = st.text(max_size=20).filter(lambda s: "\x00" not in s)
literals = st.one_of(
    st.builds(Literal, safe_text),
    st.builds(lambda n: Literal(str(n), datatype=XSD_INTEGER), st.integers(-10**6, 10**6)),
    st.builds(lambda b: Literal("true" if b else "false", datatype=XSD_BOOLEAN), st.booleans()),
    st.builds(
        lambda text, lang: Literal(text, language=lang),
        safe_text,
        st.sampled_from(["en", "fr", "de-DE"]),
    ),
)
objects = st.one_of(uris, literals)
triples = st.builds(Triple, uris, uris, objects)
graphs = st.builds(lambda items: Graph(triples=items), st.lists(triples, max_size=25))


class TestTurtleRoundTrip:
    @given(graphs)
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_round_trip(self, graph):
        manager = NamespaceManager()
        manager.bind("ns", "http://example.org/ns/")
        text = turtle.serialize(graph, manager)
        back = turtle.load(text, NamespaceManager())
        assert set(back.triples()) == set(graph.triples())

    @given(graphs)
    @settings(max_examples=30, deadline=None)
    def test_serialization_deterministic(self, graph):
        manager = NamespaceManager()
        manager.bind("ns", "http://example.org/ns/")
        assert turtle.serialize(graph, manager) == turtle.serialize(graph.copy(), manager)

    @given(graphs)
    @settings(max_examples=30, deadline=None)
    def test_round_trip_through_ntriples_agrees(self, graph):
        """Turtle and N-Triples round-trips must land on the same graph."""
        from repro.rdf import ntriples

        manager = NamespaceManager()
        manager.bind("ns", "http://example.org/ns/")
        via_turtle = turtle.load(turtle.serialize(graph, manager), NamespaceManager())
        via_ntriples = ntriples.load(ntriples.serialize(graph.triples()))
        assert set(via_turtle.triples()) == set(via_ntriples.triples())
