"""Tests for the experiment harness (specs, caching, a fast scenario run)."""

import pytest

from repro.experiments import (
    SCENARIOS,
    LinkerSpec,
    ScenarioSpec,
    clear_caches,
    get_initial_links,
    get_pair,
    get_spaces,
    run_scenario,
    scenario,
)


class TestScenarioCatalog:
    def test_all_figures_covered(self):
        expected = {
            "fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c",
            "fig4a", "fig4b", "fig4c", "fig4d", "fig8",
        }
        assert expected == set(SCENARIOS)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario("nope")

    def test_domain_scenarios_use_small_episodes(self):
        for key in ("fig4a", "fig4b", "fig4c", "fig4d"):
            assert scenario(key).episode_size == 10

    def test_config_round_trip(self):
        spec = scenario("fig2a")
        config = spec.config()
        assert config.episode_size == spec.episode_size
        assert config.step_size == spec.step_size

    def test_with_changes_does_not_mutate(self):
        spec = scenario("fig2a")
        changed = spec.with_changes(step_size=0.01)
        assert changed.step_size == 0.01
        assert spec.step_size == 0.05


class TestCaches:
    def test_pair_cache_returns_same_object(self):
        a = get_pair("opencyc_nba_nytimes")
        b = get_pair("opencyc_nba_nytimes")
        assert a is b

    def test_initial_links_returns_copies(self):
        linker = LinkerSpec(score_threshold=0.8)
        a = get_initial_links("opencyc_nba_nytimes", linker)
        b = get_initial_links("opencyc_nba_nytimes", linker)
        assert a == b and a is not b
        a.add(next(iter(b)).reversed())
        assert a != get_initial_links("opencyc_nba_nytimes", linker)

    def test_spaces_cached_by_key(self):
        a = get_spaces("opencyc_nba_nytimes", 0.3, 1)
        b = get_spaces("opencyc_nba_nytimes", 0.3, 1)
        assert a is b

    def test_clear_caches(self):
        a = get_pair("opencyc_nba_nytimes")
        clear_caches()
        assert get_pair("opencyc_nba_nytimes") is not a


class TestRunScenario:
    def test_smallest_scenario_runs(self):
        result = run_scenario(scenario("fig4d").with_changes(max_episodes=15))
        assert result.episodes_run <= 15
        assert 0.0 <= result.final_quality.f_measure <= 1.0
        assert len(result.tracker.records) == result.episodes_run + 1
        assert result.ground_truth_size == 20

    def test_deterministic(self):
        spec = scenario("fig4d").with_changes(max_episodes=8)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.tracker.f_measure_series() == second.tracker.f_measure_series()
