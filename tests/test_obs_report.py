"""Tests for the background telemetry Reporter and its JSONL schema."""

import json
import time

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import Registry
from repro.obs.report import (
    REPORT_SCHEMA,
    Reporter,
    build_sample,
    load_report,
    render_sample,
)


class TestBuildSample:
    def test_first_sample_deltas_equal_values(self):
        registry = Registry("t")
        registry.counter("c.events").inc(5)
        sample = build_sample(registry.snapshot(), None, None, seq=1, wall=0.0)
        (entry,) = sample["counters"]
        assert entry["value"] == 5
        assert entry["delta"] == 5
        assert "rate" not in entry  # no elapsed interval yet

    def test_deltas_and_rates_against_previous(self):
        registry = Registry("t")
        counter = registry.counter("c.events")
        counter.inc(5)
        before = registry.snapshot()
        counter.inc(10)
        sample = build_sample(registry.snapshot(), before, 2.0, seq=2, wall=0.0)
        (entry,) = sample["counters"]
        assert entry["value"] == 15
        assert entry["delta"] == 10
        assert entry["rate"] == pytest.approx(5.0)

    def test_gauges_carry_value_only(self):
        registry = Registry("t")
        registry.gauge("g.level").set(7)
        sample = build_sample(registry.snapshot(), None, 1.0, seq=1, wall=0.0)
        (entry,) = sample["gauges"]
        assert entry == {"name": "g.level", "labels": {}, "value": 7}

    def test_histograms_report_quantiles_and_deltas(self):
        registry = Registry("t")
        histogram = registry.histogram("h.lat", boundaries=(1.0, 10.0))
        histogram.observe(0.5)
        before = registry.snapshot()
        histogram.observe(5.0)
        sample = build_sample(registry.snapshot(), before, 1.0, seq=2, wall=0.0)
        (entry,) = sample["histograms"]
        assert entry["count"] == 2
        assert entry["delta_count"] == 1
        assert entry["delta_sum"] == pytest.approx(5.0)
        assert entry["p50"] is not None and entry["p99"] is not None

    def test_sample_is_json_serializable(self):
        registry = Registry("t")
        registry.counter("c").inc()
        with registry.span("s"):
            pass
        sample = build_sample(registry.snapshot(), None, 0.5, seq=1, wall=1.0)
        assert json.loads(json.dumps(sample)) == sample

    def test_render_sample_mentions_top_counters(self):
        registry = Registry("t")
        registry.counter("alex.links.discovered").inc(100)
        sample = build_sample(registry.snapshot(), None, 1.0, seq=1, wall=0.0)
        text = render_sample(sample, top=5)
        assert "alex.links.discovered" in text
        assert "seq=1" in text


class TestReporterLifecycle:
    def test_rejects_bad_construction(self, tmp_path):
        with pytest.raises(ObsError):
            Reporter(0.0, str(tmp_path / "r.jsonl"))
        with pytest.raises(ObsError):
            Reporter(1.0, "")
        with pytest.raises(ObsError):
            Reporter(1.0, str(tmp_path / "r.jsonl"), max_samples=0)

    def test_header_line_carries_schema(self, tmp_path):
        path = tmp_path / "r.jsonl"
        registry = Registry("t")
        reporter = Reporter(5.0, str(path), registry=registry)
        reporter.start()
        reporter.stop()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == REPORT_SCHEMA
        assert header["interval"] == 5.0

    def test_stop_without_start_is_noop(self, tmp_path):
        path = tmp_path / "r.jsonl"
        reporter = Reporter(1.0, str(path), registry=Registry("t"))
        reporter.stop()  # never started: no thread, no final sample
        reporter.stop()
        assert not path.exists()
        assert reporter.samples_written == 0

    def test_stop_twice_writes_single_final_sample(self, tmp_path):
        path = tmp_path / "r.jsonl"
        reporter = Reporter(5.0, str(path), registry=Registry("t"))
        reporter.start()
        reporter.stop()
        reporter.stop()
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        finals = [l for l in lines[1:] if json.loads(l).get("final")]
        assert len(finals) == 1

    def test_start_is_idempotent(self, tmp_path):
        path = tmp_path / "r.jsonl"
        reporter = Reporter(5.0, str(path), registry=Registry("t"))
        assert reporter.start() is reporter.start()
        assert reporter.running
        reporter.stop()
        assert not reporter.running

    def test_interval_sampling_counter_monotone(self, tmp_path):
        """Counters never decrease across consecutive Reporter samples."""
        path = tmp_path / "r.jsonl"
        registry = Registry("t")
        counter = registry.counter("c.work")
        reporter = Reporter(0.02, str(path), registry=registry)
        reporter.start()
        deadline = time.monotonic() + 2.0
        while reporter.samples_written < 3 and time.monotonic() < deadline:
            counter.inc()
            time.sleep(0.005)
        reporter.stop()
        loaded = load_report(str(path))
        assert len(loaded["samples"]) >= 2  # >= 2 interval samples + final
        values = [
            entry["value"]
            for sample in loaded["samples"]
            for entry in sample["counters"]
            if entry["name"] == "c.work"
        ]
        assert values == sorted(values)
        assert all(
            entry["delta"] >= 0
            for sample in loaded["samples"]
            for entry in sample["counters"]
        )

    def test_sequence_numbers_increase(self, tmp_path):
        path = tmp_path / "r.jsonl"
        registry = Registry("t")
        reporter = Reporter(5.0, str(path), registry=registry)
        reporter.start()
        reporter.sample_now()
        reporter.sample_now()
        reporter.stop()
        loaded = load_report(str(path))
        assert [sample["seq"] for sample in loaded["samples"]] == [1, 2, 3]


class TestBoundedSink:
    def test_file_compacts_to_max_samples(self, tmp_path):
        path = tmp_path / "r.jsonl"
        registry = Registry("t")
        counter = registry.counter("c")
        reporter = Reporter(60.0, str(path), registry=registry, max_samples=3)
        reporter.start()
        for _ in range(8):
            counter.inc()
            reporter.sample_now()
        reporter.stop()  # + final sample
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 1 + 3  # header + bound
        sequences = [json.loads(l)["seq"] for l in lines[1:]]
        assert sequences == [7, 8, 9]  # the most recent ones survive
        header = json.loads(lines[0])
        assert header["schema"] == REPORT_SCHEMA


class TestLoadReport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "r.jsonl"
        registry = Registry("t")
        registry.counter("c").inc(4)
        reporter = Reporter(60.0, str(path), registry=registry)
        reporter.start()
        reporter.sample_now()
        reporter.stop()
        loaded = load_report(str(path))
        assert loaded["header"]["schema"] == REPORT_SCHEMA
        assert loaded["samples"][0]["counters"][0]["name"] == "c"

    def test_rejects_non_report_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(ObsError, match=REPORT_SCHEMA):
            load_report(str(path))

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("")
        with pytest.raises(ObsError, match="empty"):
            load_report(str(path))

    def test_rejects_sample_without_seq(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text(
            json.dumps({"schema": REPORT_SCHEMA, "interval": 1.0}) + "\n"
            + json.dumps({"not": "a sample"}) + "\n"
        )
        with pytest.raises(ObsError, match="not a report sample"):
            load_report(str(path))


class TestDefaultRegistryResolution:
    def test_reporter_follows_use_registry(self, tmp_path):
        """A registry=None reporter samples whatever registry is current."""
        path = tmp_path / "r.jsonl"
        reporter = Reporter(60.0, str(path))
        with obs.use_registry():
            obs.inc("scoped.counter", 3)
            reporter.start()
            sample = reporter.sample_now()
        reporter.stop()
        names = [entry["name"] for entry in sample["counters"]]
        assert "scoped.counter" in names
