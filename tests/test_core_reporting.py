"""Tests for the policy introspection reports."""

import pytest

from repro.core import AlexConfig, AlexEngine, policy_report, q_value_table
from repro.core.reporting import feature_label
from repro.features import FeatureSpace
from repro.feedback import FeedbackSession, GroundTruthOracle
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")
LEFT_KIND = URIRef("http://a/ont/kind")
RIGHT_KIND = URIRef("http://b/ont/kind")


def link(i: int, j: int) -> Link:
    return Link(URIRef(f"http://a/res/e{i}"), URIRef(f"http://b/res/e{j}"))


@pytest.fixture()
def trained():
    """A small space with a good feature (name) and a junk feature (kind,
    constant across all entities), trained with oracle feedback."""
    names = ["Alpha Jones", "Bravo Smith", "Carol Jones", "Delta Smith",
             "Echo Jones", "Foxtrot Smith"]
    space = FeatureSpace(theta=0.3)
    for i in range(6):
        left = Entity(
            URIRef(f"http://a/res/e{i}"),
            {LEFT_NAME: (Literal(names[i]),), LEFT_KIND: (Literal("thing"),)},
        )
        for j in range(6):
            right = Entity(
                URIRef(f"http://b/res/e{j}"),
                {RIGHT_NAME: (Literal(names[j]),), RIGHT_KIND: (Literal("thing"),)},
            )
            space.add_pair(left, right)
    space.freeze()
    truth = LinkSet([link(i, i) for i in range(6)])
    engine = AlexEngine(
        space,
        LinkSet([link(0, 0)]),
        AlexConfig(episode_size=20, seed=5, rollback_min_negatives=3,
                   distinctiveness_min_negatives=5),
        name="trained",
    )
    session = FeedbackSession(engine, GroundTruthOracle(truth), seed=5)
    session.run(episode_size=20, max_episodes=15)
    return engine


class TestPolicyReport:
    def test_counts_match_engine(self, trained):
        report = policy_report(trained)
        assert report.engine_name == "trained"
        assert report.candidate_count == len(trained.candidates)
        assert report.blacklist_count == len(trained.blacklist)
        assert report.episodes_completed == trained.episodes_completed

    def test_name_feature_learned_positive(self, trained):
        report = policy_report(trained)
        name_summary = next(s for s in report.features if s.label == "(name, name)")
        kind_summary = next(s for s in report.features if s.label == "(kind, kind)")
        assert name_summary.average_return is not None
        assert name_summary.average_return > 0, "the identifying feature earns positive returns"
        assert kind_summary.average_return is not None
        assert kind_summary.average_return < 0, "the junk feature earns negative returns"
        assert any("name" in s.label for s in report.preferred_features())

    def test_junk_feature_poisoned(self, trained):
        report = policy_report(trained)
        poisoned_labels = {summary.label for summary in report.non_distinctive_features()}
        assert "(kind, kind)" in poisoned_labels

    def test_render_contains_sections(self, trained):
        text = policy_report(trained).render()
        assert "preferred features" in text
        assert "non-distinctive features" in text
        assert "trained" in text

    def test_feature_label(self):
        label = feature_label((LEFT_NAME, RIGHT_NAME))
        assert label == "(name, name)"


class TestQValueTable:
    def test_rows_sorted_by_magnitude(self, trained):
        rows = q_value_table(trained)
        magnitudes = [abs(row[2]) for row in rows]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_limit_respected(self, trained):
        assert len(q_value_table(trained, limit=3)) <= 3

    def test_rows_carry_return_counts(self, trained):
        for _, _, q, count in q_value_table(trained):
            assert count >= 1
            assert -1.0 <= q <= 1.0
