"""Tests for ``AlexEngine.preflight`` — static link validation wired into the
engine (quarantine, strict mode, obs counters, and default-off behaviour)."""

import pytest

from repro import obs
from repro.core import AlexConfig, AlexEngine
from repro.errors import DataValidationError
from repro.features import FeatureSpace
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.rdf.triples import Triple

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")


def left_uri(name):
    return URIRef(f"http://a/res/{name}")


def right_uri(name):
    return URIRef(f"http://b/res/{name}")


def make_space():
    space = FeatureSpace(theta=0.3)
    for name in ("alpha", "bravo", "carol"):
        space.add_pair(
            Entity(left_uri(name), {LEFT_NAME: (Literal(name),)}),
            Entity(right_uri(name), {RIGHT_NAME: (Literal(name),)}),
        )
    space.freeze()
    return space


def seeded_engine():
    """An engine whose candidates contain one good link and three known-bad
    ones: a sameAs cycle, a below-θ link, and a dangling endpoint."""
    links = LinkSet()
    links.add(Link(left_uri("alpha"), right_uri("alpha")), score=0.9)  # good
    links.add(Link(left_uri("bravo"), right_uri("carol")), score=0.8)
    links.add(Link(left_uri("carol"), right_uri("carol")), score=0.8)  # one-to-many
    links.add(Link(left_uri("cycle"), left_uri("cycle")), score=0.8)  # self-link cycle
    links.add(Link(left_uri("bravo"), right_uri("bravo")), score=0.1)  # below θ
    links.add(Link(left_uri("ghost"), right_uri("alpha")), score=0.9)  # dangling
    return AlexEngine(make_space(), links, AlexConfig(episode_size=10, seed=1))


def side_graphs():
    left = Graph(name="left")
    right = Graph(name="right")
    for name in ("alpha", "bravo", "carol", "cycle"):
        left.add(Triple(left_uri(name), LEFT_NAME, Literal(name)))
        right.add(Triple(right_uri(name), RIGHT_NAME, Literal(name)))
    # the self-link's entity appears on both sides, so only the cycle —
    # not a dangling endpoint — is reported for it
    right.add(Triple(left_uri("cycle"), RIGHT_NAME, Literal("cycle")))
    return left, right


class TestPreflightReporting:
    def test_reports_cycle_below_theta_and_dangling(self):
        engine = seeded_engine()
        left, right = side_graphs()
        diagnostics = engine.preflight(left, right)
        codes = {d.code for d in diagnostics}
        assert "ALEX-D301" in codes  # cycle (self-link)
        assert "ALEX-D305" in codes  # below θ
        assert "ALEX-D304" in codes  # dangling endpoint
        # deterministic: running again yields the identical report
        assert diagnostics == engine.preflight(left, right)

    def test_uses_engine_theta(self):
        engine = seeded_engine()
        below = [d for d in engine.preflight() if d.code == "ALEX-D305"]
        assert len(below) == 1
        assert below[0].link == Link(left_uri("bravo"), right_uri("bravo"))

    def test_preflight_without_graphs_skips_endpoint_checks(self):
        engine = seeded_engine()
        codes = {d.code for d in engine.preflight()}
        assert "ALEX-D304" not in codes

    def test_clean_candidates_preflight_empty(self):
        links = LinkSet()
        links.add(Link(left_uri("alpha"), right_uri("alpha")), score=0.9)
        engine = AlexEngine(make_space(), links, AlexConfig(episode_size=10, seed=1))
        assert engine.preflight() == []


class TestQuarantine:
    def test_quarantine_moves_exactly_error_level_links(self):
        engine = seeded_engine()
        left, right = side_graphs()
        before = engine.candidates.snapshot()
        diagnostics = engine.preflight(left, right, quarantine=True)

        expected_bad = {
            d.link for d in diagnostics if d.is_error and d.link is not None
        }
        assert expected_bad == {
            Link(left_uri("bravo"), right_uri("bravo")),  # D305 below θ
            Link(left_uri("ghost"), right_uri("alpha")),  # D304 dangling
        }
        for bad in expected_bad:
            assert bad not in engine.candidates
            assert bad in engine.blacklist
        # warning-level links (cycle, one-to-many) stay in the candidates
        assert Link(left_uri("cycle"), left_uri("cycle")) in engine.candidates
        assert engine.candidates.snapshot() == before - expected_bad

    def test_quarantine_does_not_mutate_anything_else(self):
        engine = seeded_engine()
        left, right = side_graphs()
        good = Link(left_uri("alpha"), right_uri("alpha"))
        engine.preflight(left, right, quarantine=True)
        assert engine.candidates.score(good) == 0.9
        assert engine.confirmed == set()
        assert engine._tally == {}
        assert engine.episodes_completed == 0

    def test_without_quarantine_nothing_moves(self):
        engine = seeded_engine()
        before = engine.candidates.snapshot()
        engine.preflight()
        assert engine.candidates.snapshot() == before
        assert engine.blacklist == set()

    def test_quarantine_is_idempotent(self):
        engine = seeded_engine()
        engine.preflight(quarantine=True)
        blacklist = set(engine.blacklist)
        count = len(engine.candidates)
        # second run: quarantined links now show up as D306 (blacklisted) but
        # are no longer candidates, so nothing further moves
        engine.preflight(quarantine=True)
        assert engine.blacklist == blacklist
        assert len(engine.candidates) == count


class TestStrict:
    def test_strict_raises_with_diagnostics(self):
        engine = seeded_engine()
        with pytest.raises(DataValidationError) as excinfo:
            engine.preflight(strict=True)
        assert any(d.code == "ALEX-D305" for d in excinfo.value.diagnostics)

    def test_strict_passes_on_warnings_only(self):
        links = LinkSet()
        links.add(Link(left_uri("alpha"), right_uri("alpha")), score=0.9)
        links.add(Link(left_uri("alpha"), right_uri("bravo")), score=0.9)  # one-to-many
        engine = AlexEngine(make_space(), links, AlexConfig(episode_size=10, seed=1))
        diagnostics = engine.preflight(strict=True)  # warnings do not raise
        assert {d.code for d in diagnostics} == {"ALEX-D303"}


class TestObsAndDefaults:
    def test_counters(self):
        engine = seeded_engine()
        left, right = side_graphs()
        with obs.use_registry() as registry:
            engine.preflight(left, right, quarantine=True)
            snapshot = registry.snapshot()
        assert obs.counter_total(snapshot, "alex.preflight.runs") == 1
        assert obs.counter_total(snapshot, "alex.preflight.quarantined") == 2
        assert obs.counter_total(snapshot, "rdf.validate.runs") == 1

    def test_no_validation_unless_preflight_called(self):
        with obs.use_registry() as registry:
            engine = seeded_engine()
            engine.process_feedback(Link(left_uri("alpha"), right_uri("alpha")), positive=True)
            snapshot = registry.snapshot()
        assert obs.counter_total(snapshot, "rdf.validate.runs") == 0
        assert obs.counter_total(snapshot, "alex.preflight.runs") == 0
