"""Property-based tests for the graph store, its term dictionary, and
N-Triples round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import ntriples
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Literal, URIRef
from repro.rdf.triples import Triple

local = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=8
)
uris = st.builds(lambda name: URIRef("http://x/" + name), local)
literal_text = st.text(max_size=20).filter(lambda s: "\x00" not in s)
literals = st.one_of(
    st.builds(Literal, literal_text),
    st.builds(Literal, st.integers(-10**6, 10**6)),
    st.builds(Literal, st.booleans()),
)
objects = st.one_of(uris, literals)
triples = st.builds(Triple, uris, uris, objects)
triple_lists = st.lists(triples, max_size=40)


class TestGraphProperties:
    @given(triple_lists)
    def test_size_equals_distinct_triples(self, items):
        graph = Graph(triples=items)
        assert len(graph) == len(set(items))

    @given(triple_lists)
    def test_indexes_agree_on_membership(self, items):
        graph = Graph(triples=items)
        for t in items:
            assert t in graph
            assert t in set(graph.triples(subject=t.subject))
            assert t in set(graph.triples(predicate=t.predicate))
            assert t in set(graph.triples(object=t.object))

    @given(triple_lists)
    def test_add_then_remove_restores_empty(self, items):
        graph = Graph()
        for t in items:
            graph.add(t)
        for t in set(items):
            assert graph.remove(t)
        assert len(graph) == 0
        assert list(graph.triples()) == []

    @given(triple_lists, triple_lists)
    @settings(max_examples=30)
    def test_union_is_set_union(self, a, b):
        union = Graph(triples=a) | Graph(triples=b)
        assert set(union.triples()) == set(a) | set(b)

    @given(triple_lists)
    def test_copy_equals_original(self, items):
        graph = Graph(triples=items)
        assert set(graph.copy().triples()) == set(graph.triples())

    @given(triple_lists)
    @settings(max_examples=50)
    def test_ntriples_round_trip(self, items):
        graph = Graph(triples=items)
        text = ntriples.serialize(graph.triples())
        back = ntriples.load(text)
        assert set(back.triples()) == set(graph.triples())

    @given(triple_lists)
    def test_count_consistent_with_iteration(self, items):
        graph = Graph(triples=items)
        for t in items[:5]:
            assert graph.count(predicate=t.predicate) == len(
                list(graph.triples(predicate=t.predicate))
            )


# every term kind the dictionary must round-trip: URIs, blank nodes, and
# literals that are plain, typed, or language-tagged
bnodes = st.builds(
    BNode, st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=8)
)
tagged_literals = st.builds(lambda s, tag: Literal(s, language=tag), literal_text,
                            st.sampled_from(["en", "de", "en-GB"]))
all_terms = st.one_of(uris, bnodes, literals, tagged_literals)


class TestTermDictionaryProperties:
    @given(st.lists(all_terms, max_size=40))
    def test_encode_decode_round_trip(self, terms):
        dictionary = TermDictionary()
        ids = [dictionary.encode(term) for term in terms]
        for term, term_id in zip(terms, ids):
            assert dictionary.decode(term_id) == term
            assert dictionary.lookup(term) == term_id
            assert term in dictionary

    @given(st.lists(all_terms, max_size=40))
    def test_equal_terms_share_one_id(self, terms):
        dictionary = TermDictionary()
        ids = {term: dictionary.encode(term) for term in terms}
        for term in terms:
            assert dictionary.encode(term) == ids[term]
        assert len(dictionary) == len(set(terms))

    @given(st.lists(all_terms, max_size=40))
    def test_ids_are_dense_in_first_seen_order(self, terms):
        dictionary = TermDictionary()
        seen: list = []
        for term in terms:
            term_id = dictionary.encode(term)
            if term not in seen:
                assert term_id == len(seen)
                seen.append(term)
        assert list(dictionary.terms()) == seen

    @given(st.lists(all_terms, max_size=40))
    def test_persistence_preserves_ids(self, terms):
        dictionary = TermDictionary()
        for term in terms:
            dictionary.encode(term)
        restored = TermDictionary.from_dict(dictionary.to_dict())
        assert len(restored) == len(dictionary)
        for term in terms:
            assert restored.lookup(term) == dictionary.lookup(term)

    @given(triple_lists)
    def test_graph_persistence_preserves_id_triples(self, items):
        graph = Graph(triples=items)
        restored = Graph.from_dict(graph.to_dict())
        assert set(restored.triples_ids()) == set(graph.triples_ids())
        assert set(restored.triples()) == set(graph.triples())
        for term in graph.dictionary.terms():
            assert restored.dictionary.lookup(term) == graph.dictionary.lookup(term)
