"""Property-based tests for the graph store and N-Triples round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import ntriples
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.rdf.triples import Triple

local = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=8
)
uris = st.builds(lambda name: URIRef("http://x/" + name), local)
literal_text = st.text(max_size=20).filter(lambda s: "\x00" not in s)
literals = st.one_of(
    st.builds(Literal, literal_text),
    st.builds(Literal, st.integers(-10**6, 10**6)),
    st.builds(Literal, st.booleans()),
)
objects = st.one_of(uris, literals)
triples = st.builds(Triple, uris, uris, objects)
triple_lists = st.lists(triples, max_size=40)


class TestGraphProperties:
    @given(triple_lists)
    def test_size_equals_distinct_triples(self, items):
        graph = Graph(triples=items)
        assert len(graph) == len(set(items))

    @given(triple_lists)
    def test_indexes_agree_on_membership(self, items):
        graph = Graph(triples=items)
        for t in items:
            assert t in graph
            assert t in set(graph.triples(subject=t.subject))
            assert t in set(graph.triples(predicate=t.predicate))
            assert t in set(graph.triples(object=t.object))

    @given(triple_lists)
    def test_add_then_remove_restores_empty(self, items):
        graph = Graph()
        for t in items:
            graph.add(t)
        for t in set(items):
            assert graph.remove(t)
        assert len(graph) == 0
        assert list(graph.triples()) == []

    @given(triple_lists, triple_lists)
    @settings(max_examples=30)
    def test_union_is_set_union(self, a, b):
        union = Graph(triples=a) | Graph(triples=b)
        assert set(union.triples()) == set(a) | set(b)

    @given(triple_lists)
    def test_copy_equals_original(self, items):
        graph = Graph(triples=items)
        assert set(graph.copy().triples()) == set(graph.triples())

    @given(triple_lists)
    @settings(max_examples=50)
    def test_ntriples_round_trip(self, items):
        graph = Graph(triples=items)
        text = ntriples.serialize(graph.triples())
        back = ntriples.load(text)
        assert set(back.triples()) == set(graph.triples())

    @given(triple_lists)
    def test_count_consistent_with_iteration(self, items):
        graph = Graph(triples=items)
        for t in items[:5]:
            assert graph.count(predicate=t.predicate) == len(
                list(graph.triples(predicate=t.predicate))
            )
