"""Tests for the Markdown report generator (on a fast subset)."""

import pytest

from repro.experiments.report_md import REPORT_SECTIONS, generate_report


class TestReportSections:
    def test_registry_covers_all_experiments(self):
        names = {name for _, name in REPORT_SECTIONS}
        expected = {
            "table_1", "figure_2a", "figure_2b", "figure_2c",
            "figure_3a", "figure_3b", "figure_3c",
            "figure_4a", "figure_4b", "figure_4c", "figure_4d",
            "figure_5", "figure_6", "figure_7", "figure_8",
            "figure_9", "figure_10", "figure_11", "execution_time",
        }
        assert names == expected

    def test_registry_functions_exist(self):
        import repro.experiments as experiments

        for _, name in REPORT_SECTIONS:
            assert callable(getattr(experiments, name))


class TestGenerateReport:
    def test_subset_report_renders(self):
        progress_calls = []
        text = generate_report(
            sections=[("Table 1 — dataset inventory", "table_1"),
                      ("Figure 5 — search-space filtering", "figure_5")],
            progress=progress_calls.append,
        )
        assert text.startswith("# ALEX reproduction report")
        assert "## Table 1" in text
        assert "## Figure 5" in text
        assert "```" in text
        assert len(progress_calls) == 2

    def test_write_report_file(self, tmp_path):
        from repro.experiments.report_md import write_report
        import repro.experiments.report_md as report_md

        original = report_md.REPORT_SECTIONS
        report_md.REPORT_SECTIONS = [("Table 1 — dataset inventory", "table_1")]
        try:
            path = str(tmp_path / "report.md")
            write_report(path)
            content = open(path).read()
            assert "Table 1" in content
        finally:
            report_md.REPORT_SECTIONS = original
