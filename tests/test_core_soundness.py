"""Empirical checks of the Section 5 soundness properties.

The paper proves (1) policy improvement yields a policy at least as good as
the previous one, and (2) the property holds for ε-greedy policies. These
tests verify the operational versions of those claims on a real run:

* at every improvement, the chosen greedy action maximizes the current Q
  (Equation 7);
* Q(s, π_{k+1}(s)) ≥ Q(s, π_k(s)) at improvement time (Equation 8);
* the ε-greedy distribution always keeps π(s,a) ≥ ε/|A(s)| for every action
  (the continual-exploration requirement of Section 4.4.1);
* across a full run, later episodes collect a lower share of negative
  feedback than early ones (the learning actually pays off).
"""

import pytest

from repro.core import AlexConfig, AlexEngine, available_actions
from repro.core.state import StateAction
from repro.features import FeatureSpace
from repro.feedback import FeedbackSession, GroundTruthOracle
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")
LEFT_KIND = URIRef("http://a/ont/kind")
RIGHT_KIND = URIRef("http://b/ont/kind")


def link(i: int, j: int) -> Link:
    return Link(URIRef(f"http://a/res/e{i}"), URIRef(f"http://b/res/e{j}"))


def build_space(n: int = 8) -> FeatureSpace:
    names = ["Alpha Jones", "Bravo Smith", "Carol Kent", "Delta Reed",
             "Echo Moss", "Foxtrot Hale", "Golf Pryce", "Hotel Varn"]
    space = FeatureSpace(theta=0.3)
    for i in range(n):
        left = Entity(
            URIRef(f"http://a/res/e{i}"),
            {LEFT_NAME: (Literal(names[i]),), LEFT_KIND: (Literal("thing"),)},
        )
        for j in range(n):
            right = Entity(
                URIRef(f"http://b/res/e{j}"),
                {RIGHT_NAME: (Literal(names[j]),), RIGHT_KIND: (Literal("thing"),)},
            )
            space.add_pair(left, right)
    space.freeze()
    return space


class ImprovementAudit:
    """Wraps a policy to record every improvement against the value table."""

    def __init__(self, engine: AlexEngine):
        self.engine = engine
        self.violations: list[str] = []
        self.improvements = 0
        original_improve = engine.policy.improve

        def audited_improve(state, greedy_action):
            feature_set = engine.space.feature_set(state)
            actions = available_actions(feature_set) if feature_set else []
            q_new = engine.values.q(StateAction(state, greedy_action))
            # (1) the new greedy action maximizes Q over defined actions
            for action in actions:
                q_other = engine.values.q(StateAction(state, action))
                if q_other is not None and q_new is not None and q_other > q_new + 1e-9:
                    self.violations.append(
                        f"argmax violated at {state}: {action} has higher Q"
                    )
            # (2) monotone against the previous greedy choice (Equation 8)
            previous = engine.policy.greedy_action(state)
            if previous is not None and q_new is not None:
                q_previous = engine.values.q(StateAction(state, previous))
                if q_previous is not None and q_new < q_previous - 1e-9:
                    self.violations.append(
                        f"improvement not monotone at {state}"
                    )
            self.improvements += 1
            return original_improve(state, greedy_action)

        engine.policy.improve = audited_improve  # type: ignore[method-assign]


@pytest.fixture()
def run():
    space = build_space()
    truth = LinkSet([link(i, i) for i in range(8)])
    engine = AlexEngine(
        space, LinkSet([link(0, 0)]),
        AlexConfig(episode_size=10, seed=11, rollback_min_negatives=3,
                   convergence_patience=3),
    )
    audit = ImprovementAudit(engine)
    session = FeedbackSession(engine, GroundTruthOracle(truth), seed=11)
    session.run(episode_size=10, max_episodes=30)
    return engine, audit


class TestSoundness:
    def test_improvements_happened(self, run):
        _, audit = run
        assert audit.improvements > 0, "the audit must observe improvements"

    def test_greedy_choice_is_argmax(self, run):
        _, audit = run
        assert audit.violations == []

    def test_epsilon_greedy_keeps_exploration(self, run):
        engine, _ = run
        for state in engine.policy.states():
            feature_set = engine.space.feature_set(state)
            if feature_set is None:
                continue
            actions = available_actions(feature_set)
            probabilities = engine.policy.action_probabilities(state, actions)
            floor = engine.config.epsilon / len(actions)
            for probability in probabilities.values():
                assert probability >= floor - 1e-12

    def test_learning_reduces_negative_feedback(self, run):
        """Once bad exploration has been experienced (the peak of negative
        feedback), learning drives the negative share back down."""
        engine, _ = run
        history = engine.episode_history
        assert len(history) >= 4
        fractions = [stats.negative_fraction for stats in history]
        peak = max(fractions)
        assert peak > 0.0, "the run must have explored some wrong links"
        late = fractions[-1]
        assert late < peak, (
            f"negative feedback should fall after its peak "
            f"(peak {peak:.2f} -> final {late:.2f})"
        )
