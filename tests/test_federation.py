"""Unit and integration tests for the federation layer."""

import pytest

from repro.errors import FederationError
from repro.federation import (
    Endpoint,
    FederatedEngine,
    exclusive_groups,
    select_sources,
)
from repro.links import Link, LinkSet
from repro.rdf import turtle
from repro.rdf.terms import URIRef
from repro.sparql.ast import BGP, TriplePattern, Var
from repro.sparql.parser import parse_query

DB = "http://db/"
NYT = "http://nyt/"


@pytest.fixture()
def dbpedia():
    return turtle.load(
        """
        @prefix db: <http://db/> .
        db:lebron db:award db:mvp2013 ; db:name "LeBron James" .
        db:durant db:award db:mvp2014 ; db:name "Kevin Durant" .
        """,
        name="dbpedia",
    )


@pytest.fixture()
def nytimes():
    return turtle.load(
        """
        @prefix nyt: <http://nyt/> .
        nyt:lebron nyt:topicOf nyt:a1 , nyt:a2 .
        nyt:durant nyt:topicOf nyt:a3 .
        """,
        name="nytimes",
    )


@pytest.fixture()
def links():
    return LinkSet(
        [
            Link(URIRef(DB + "lebron"), URIRef(NYT + "lebron")),
            Link(URIRef(DB + "durant"), URIRef(NYT + "durant")),
        ]
    )


@pytest.fixture()
def engine(dbpedia, nytimes, links):
    return FederatedEngine([Endpoint(dbpedia), Endpoint(nytimes)], links)


class TestEndpoint:
    def test_predicates_cached(self, dbpedia):
        endpoint = Endpoint(dbpedia)
        assert URIRef(DB + "award") in endpoint.predicates
        assert endpoint.predicates is endpoint.predicates  # cached object

    def test_can_answer_by_predicate(self, dbpedia):
        endpoint = Endpoint(dbpedia)
        yes = TriplePattern(Var("s"), URIRef(DB + "award"), Var("o"))
        no = TriplePattern(Var("s"), URIRef(NYT + "topicOf"), Var("o"))
        assert endpoint.can_answer(yes) is True
        assert endpoint.can_answer(no) is False

    def test_can_answer_variable_predicate(self, dbpedia):
        endpoint = Endpoint(dbpedia)
        assert endpoint.can_answer(TriplePattern(Var("s"), Var("p"), Var("o"))) is True

    def test_request_counting(self, dbpedia):
        endpoint = Endpoint(dbpedia)
        before = endpoint.request_count
        endpoint.select("SELECT ?s WHERE { ?s <http://db/award> ?o }")
        assert endpoint.request_count == before + 1

    def test_invalidate_capabilities(self, dbpedia):
        endpoint = Endpoint(dbpedia)
        _ = endpoint.predicates
        from repro.rdf.triples import Triple

        dbpedia.add(Triple(URIRef(DB + "x"), URIRef(DB + "newpred"), URIRef(DB + "y")))
        endpoint.invalidate_capabilities()
        assert URIRef(DB + "newpred") in endpoint.predicates


class TestSourceSelection:
    def test_each_pattern_assigned(self, dbpedia, nytimes):
        endpoints = [Endpoint(dbpedia), Endpoint(nytimes)]
        bgp = BGP(
            [
                TriplePattern(Var("p"), URIRef(DB + "award"), Var("a")),
                TriplePattern(Var("p"), URIRef(NYT + "topicOf"), Var("t")),
            ]
        )
        assignments = select_sources(bgp, endpoints)
        assert assignments[0].endpoints[0].name == "dbpedia"
        assert assignments[1].endpoints[0].name == "nytimes"
        assert all(a.exclusive for a in assignments)

    def test_unanswerable_pattern_raises(self, dbpedia):
        bgp = BGP([TriplePattern(Var("s"), URIRef("http://other/p"), Var("o"))])
        with pytest.raises(FederationError):
            select_sources(bgp, [Endpoint(dbpedia)])

    def test_unanswerable_pattern_message_is_actionable(self, dbpedia, nytimes):
        bgp = BGP([TriplePattern(Var("s"), URIRef("http://other/p"), Var("o"))])
        with pytest.raises(FederationError) as excinfo:
            select_sources(bgp, [Endpoint(dbpedia), Endpoint(nytimes)])
        message = str(excinfo.value)
        assert "[ALEX-W110]" in message
        assert "dbpedia" in message and "nytimes" in message
        assert "empty result" in message

    def test_endpoint_order_is_deterministic(self, dbpedia, nytimes):
        pattern = TriplePattern(Var("s"), Var("p"), Var("o"))
        bgp = BGP([pattern])
        forward = select_sources(bgp, [Endpoint(dbpedia), Endpoint(nytimes)])
        reverse = select_sources(bgp, [Endpoint(nytimes), Endpoint(dbpedia)])
        assert [e.name for e in forward[0].endpoints] == ["dbpedia", "nytimes"]
        assert [e.name for e in reverse[0].endpoints] == ["dbpedia", "nytimes"]

    def test_no_endpoints_raises(self):
        with pytest.raises(FederationError):
            select_sources(BGP([]), [])

    def test_exclusive_groups(self, dbpedia, nytimes):
        endpoints = [Endpoint(dbpedia), Endpoint(nytimes)]
        bgp = BGP(
            [
                TriplePattern(Var("p"), URIRef(DB + "award"), Var("a")),
                TriplePattern(Var("p"), URIRef(DB + "name"), Var("n")),
                TriplePattern(Var("p"), URIRef(NYT + "topicOf"), Var("t")),
            ]
        )
        groups = exclusive_groups(select_sources(bgp, endpoints))
        assert [len(group) for group in groups] == [2, 1]


class TestFederatedExecution:
    def test_cross_dataset_join_via_links(self, engine):
        result = engine.select(
            """
            PREFIX db: <http://db/>
            PREFIX nyt: <http://nyt/>
            SELECT ?player ?article WHERE {
              ?player db:award db:mvp2013 .
              ?player nyt:topicOf ?article .
            }
            """
        )
        assert len(result) == 2
        assert all(row.links_used for row in result)
        assert result.links_used() == frozenset(
            {Link(URIRef(DB + "lebron"), URIRef(NYT + "lebron"))}
        )

    def test_no_links_no_answers(self, dbpedia, nytimes):
        engine = FederatedEngine([Endpoint(dbpedia), Endpoint(nytimes)], LinkSet())
        result = engine.select(
            """
            PREFIX db: <http://db/>
            PREFIX nyt: <http://nyt/>
            SELECT ?a WHERE { ?p db:award db:mvp2013 . ?p nyt:topicOf ?a . }
            """
        )
        assert len(result) == 0

    def test_single_source_query_has_no_provenance(self, engine):
        result = engine.select(
            "PREFIX db: <http://db/> SELECT ?p WHERE { ?p db:award db:mvp2013 }"
        )
        assert len(result) == 1
        assert not result.rows[0].links_used
        assert result.cross_dataset_rows() == []

    def test_filter_applies(self, engine):
        result = engine.select(
            """
            PREFIX db: <http://db/>
            PREFIX nyt: <http://nyt/>
            SELECT ?n ?a WHERE {
              ?p db:name ?n . ?p nyt:topicOf ?a .
              FILTER (CONTAINS(?n, "Durant"))
            }
            """
        )
        assert len(result) == 1

    def test_distinct_and_limit(self, engine):
        result = engine.select(
            """
            PREFIX db: <http://db/>
            PREFIX nyt: <http://nyt/>
            SELECT DISTINCT ?p WHERE { ?p db:name ?n . ?p nyt:topicOf ?a . } LIMIT 1
            """
        )
        assert len(result) == 1

    def test_order_by(self, engine):
        result = engine.select(
            "PREFIX db: <http://db/> SELECT ?n WHERE { ?p db:name ?n } ORDER BY ?n"
        )
        names = [str(row.bindings[Var("n")]) for row in result]
        assert names == sorted(names)

    def test_unsupported_pattern_raises(self, engine):
        with pytest.raises(FederationError):
            engine.select(
                "PREFIX db: <http://db/> SELECT ?p WHERE { OPTIONAL { ?p db:name ?n } }"
            )

    def test_ask_rejected(self, engine):
        with pytest.raises(FederationError):
            engine.select("ASK { <http://db/lebron> <http://db/name> ?n }")

    def test_empty_where_rejected(self, engine):
        with pytest.raises(FederationError):
            engine.select("SELECT ?p WHERE { }")

    def test_needs_endpoints(self, links):
        with pytest.raises(FederationError):
            FederatedEngine([], links)

    def test_execute_parsed_query(self, engine):
        parsed = parse_query(
            "PREFIX db: <http://db/> SELECT ?n WHERE { ?p db:name ?n }"
        )
        assert len(engine.execute(parsed)) == 2


class TestStrictFederation:
    def test_strict_engine_rejects_analysis_errors(self, dbpedia, nytimes, links):
        from repro.errors import QueryAnalysisError

        engine = FederatedEngine(
            [Endpoint(dbpedia), Endpoint(nytimes)], links, strict=True
        )
        with pytest.raises(QueryAnalysisError) as excinfo:
            engine.select(
                "PREFIX db: <http://db/> SELECT ?ghost WHERE { ?p db:name ?n }"
            )
        assert any(d.code == "ALEX-E001" for d in excinfo.value.diagnostics)

    def test_strict_engine_accepts_clean_query(self, dbpedia, nytimes, links):
        engine = FederatedEngine(
            [Endpoint(dbpedia), Endpoint(nytimes)], links, strict=True
        )
        result = engine.select(
            "PREFIX db: <http://db/> SELECT ?n WHERE { ?p db:name ?n }"
        )
        assert len(result) == 2

    def test_default_engine_is_unchanged(self, engine):
        result = engine.select(
            "PREFIX db: <http://db/> SELECT ?ghost WHERE { ?p db:name ?n }"
        )
        assert len(result) == 2  # rows exist, ?ghost is simply unbound
