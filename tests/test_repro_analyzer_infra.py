"""Analyzer infrastructure: baseline machinery, output formats, the
diagnostics-registry integration, the committed baseline/writers.json
artifacts, and the lint_repro deprecation wrapper."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro_analyzer
from repro_analyzer import (
    AnalyzerConfig,
    BaselineError,
    CodeFinding,
    analyze_paths,
    apply_baseline,
    collect_registered_codes,
    generate_baseline,
    parse_baseline,
    render_json,
    render_sarif,
    render_text,
    validate_codes,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "tools", "repro_analyzer", "baseline.json")
WRITERS_PATH = os.path.join(REPO_ROOT, "tools", "repro_analyzer", "writers.json")
LOCKS_PATH = os.path.join(REPO_ROOT, "tools", "repro_analyzer", "locks.json")


def _finding(path="src/x.py", code="ALEX-C001", severity="error",
             line=1, column=1, message="m"):
    return CodeFinding(path=path, line=line, column=column, code=code,
                      severity=severity, message=message)


# -- diagnostics-registry integration ----------------------------------------


def test_alex_c_codes_registered_in_repro_diagnostics():
    from repro.diagnostics import all_codes

    assert repro_analyzer.REGISTERED_WITH_REPRO is True
    registry = all_codes()
    for code, (severity, summary) in repro_analyzer.CODES.items():
        assert code in registry
        assert registry[code].severity == severity
        assert registry[code].summary == summary
        assert registry[code].analyzer == "repro_analyzer"


def test_collect_registered_codes_spans_all_three_analyzers():
    codes = collect_registered_codes(REPO_ROOT)
    assert "ALEX-E001" in codes  # sparql.analysis
    assert any(code.startswith("ALEX-D") for code in codes)  # rdf.validate
    assert "ALEX-C001" in codes  # this analyzer


# -- baseline machinery -------------------------------------------------------


def test_baseline_roundtrip_and_suppression():
    findings = [
        _finding(line=1), _finding(line=5), _finding(code="ALEX-C010", line=9),
    ]
    document = generate_baseline(findings, justification="accepted for test")
    entries = parse_baseline(document)
    surviving, suppressed, stale = apply_baseline(findings, entries)
    assert surviving == []
    assert suppressed == 3
    assert stale == []


def test_baseline_absorbs_only_its_count_regressions_survive():
    entries = parse_baseline({
        "format": "repro-analyzer-baseline/1",
        "entries": [
            {"path": "src/x.py", "code": "ALEX-C001", "count": 1,
             "justification": "one accepted"},
        ],
    })
    findings = [_finding(line=1), _finding(line=5)]
    surviving, suppressed, stale = apply_baseline(findings, entries)
    assert suppressed == 1
    assert [f.line for f in surviving] == [5]
    assert stale == []


def test_baseline_reports_stale_buckets():
    entries = parse_baseline({
        "format": "repro-analyzer-baseline/1",
        "entries": [
            {"path": "src/x.py", "code": "ALEX-C001", "count": 3,
             "justification": "was three, now one"},
        ],
    })
    surviving, suppressed, stale = apply_baseline([_finding(line=1)], entries)
    assert surviving == [] and suppressed == 1
    assert len(stale) == 1 and "shrink or remove" in stale[0]


@pytest.mark.parametrize("broken,fragment", [
    ({"format": "nope", "entries": []}, "unknown baseline format"),
    ({"format": "repro-analyzer-baseline/1", "entries": "x"}, "must be a list"),
    ({"format": "repro-analyzer-baseline/1",
      "entries": [{"path": "p", "code": "c", "count": 0, "justification": "j"}]},
     "positive int"),
    ({"format": "repro-analyzer-baseline/1",
      "entries": [{"path": "p", "code": "c", "count": 1, "justification": " "}]},
     "justification"),
    ({"format": "repro-analyzer-baseline/1",
      "entries": [{"path": "p", "code": "c", "count": 1}]},
     "missing required key"),
], ids=["format", "entries-type", "count", "justification", "missing-key"])
def test_baseline_validation_rejects_malformed_documents(broken, fragment):
    with pytest.raises(BaselineError, match=fragment):
        parse_baseline(broken)


def test_baseline_rejects_duplicate_buckets():
    entry = {"path": "p", "code": "c", "count": 1, "justification": "j"}
    with pytest.raises(BaselineError, match="duplicates bucket"):
        parse_baseline({
            "format": "repro-analyzer-baseline/1", "entries": [entry, dict(entry)],
        })


def test_validate_codes_flags_unregistered():
    entries = parse_baseline({
        "format": "repro-analyzer-baseline/1",
        "entries": [{"path": "p", "code": "ALEX-Z999", "count": 1,
                     "justification": "j"}],
    })
    problems = validate_codes(entries, {"ALEX-C001"})
    assert problems and "ALEX-Z999" in problems[0]


# -- committed artifacts stay truthful ---------------------------------------


def _real_run():
    return analyze_paths(["src/repro"], REPO_ROOT, config=AnalyzerConfig())


def test_committed_baseline_matches_a_live_run():
    """`repro lint-code src/repro` must run clean against the committed
    baseline: no surviving findings, no stale buckets, and every bucket
    justified."""
    entries = repro_analyzer.load_baseline(BASELINE_PATH)
    assert validate_codes(
        entries,
        collect_registered_codes(REPO_ROOT) | set(repro_analyzer.all_rule_codes()),
    ) == []
    for entry in entries:
        assert len(entry.justification) > 40, (
            f"baseline bucket ({entry.path}, {entry.code}) needs a real "
            "justification, not a placeholder"
        )
    result = _real_run()
    surviving, suppressed, stale = apply_baseline(result.findings, entries)
    assert surviving == [], [f.format() for f in surviving]
    assert stale == [], stale
    assert suppressed == sum(entry.count for entry in entries)


def test_committed_writer_inventory_matches_a_live_run():
    with open(WRITERS_PATH, encoding="utf-8") as handle:
        committed = json.load(handle)
    live = _real_run().writer_inventory
    assert committed == live, (
        "tools/repro_analyzer/writers.json is stale — regenerate with "
        "`repro lint-code src/repro --writers tools/repro_analyzer/writers.json`"
    )
    # the inventory must cover the classes the service layer will route
    assert {"Graph", "TermDictionary", "LinkSet", "AlexEngine"} <= set(live)


def test_committed_lock_inventory_matches_a_live_run():
    with open(LOCKS_PATH, encoding="utf-8") as handle:
        committed = json.load(handle)
    live = _real_run().lock_inventory
    assert committed == live, (
        "tools/repro_analyzer/locks.json is stale — regenerate with "
        "`repro lint-code src/repro --locks tools/repro_analyzer/locks.json`"
    )
    # the inventory must cover every lock-owning scope the service layer
    # will sit on top of
    assert {
        "src/repro/obs/registry.py::Registry",
        "src/repro/obs/trace.py::Tracer",
        "src/repro/sparql/prepared.py::<module>",
    } <= set(live)
    registry = live["src/repro/obs/registry.py::Registry"]["locks"]["_lock"]
    assert registry["guards"] == ["_instruments", "_spans"]


def test_findings_and_inventories_are_deterministic():
    """Two full runs produce byte-identical orderings — findings sort by
    (path, line, column, code) and both inventories are sorted, so JSON
    and SARIF output is reproducible for CI diffing."""
    first, second = _real_run(), _real_run()
    assert [f.format() for f in first.findings] == [
        f.format() for f in second.findings
    ]
    assert first.findings == sorted(
        first.findings, key=lambda f: (f.path, f.line, f.column, f.code)
    )
    assert json.dumps(first.lock_inventory, sort_keys=True) == json.dumps(
        second.lock_inventory, sort_keys=True
    )
    assert json.dumps(first.writer_inventory, sort_keys=True) == json.dumps(
        second.writer_inventory, sort_keys=True
    )


# -- output formats -----------------------------------------------------------


def test_render_text_and_json():
    findings = [_finding(line=3, column=7)]
    text = render_text(findings, suppressed=2)
    assert "src/x.py:3:7: ALEX-C001 error: m" in text
    assert "1 finding(s)" in text and "2 baselined" in text
    payload = json.loads(render_json(findings, suppressed=2))
    assert payload["suppressed"] == 2
    assert payload["findings"][0]["code"] == "ALEX-C001"
    assert payload["findings"][0]["line"] == 3


def test_render_sarif_shape():
    findings = [
        _finding(line=3, column=7),
        _finding(code="ALEX-C032", severity="info", line=9),
    ]
    rules = repro_analyzer.all_rule_codes()
    document = json.loads(render_sarif(findings, rules))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rules)
    assert len(run["results"]) == 2
    first = run["results"][0]
    assert first["ruleId"] == "ALEX-C001"
    assert first["level"] == "error"
    location = first["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/x.py"
    assert location["region"] == {"startLine": 3, "startColumn": 7}
    # info severity maps to SARIF "note"
    assert run["results"][1]["level"] == "note"
    # every result's ruleIndex points at its rule
    for result in run["results"]:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]


# -- the deprecation wrapper and CLI ------------------------------------------


def test_lint_repro_wrapper_runs_standalone_and_clean():
    """The historical invocation — no PYTHONPATH, exit 0 on a clean tree."""
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    completed = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "lint_repro.py")],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "no findings" in completed.stdout


def test_repro_lint_code_cli_clean_against_baseline():
    from repro.cli import main

    assert main(["lint-code", "src/repro"]) == 0
    assert main(["lint-code", "--check-baseline"]) == 0


def test_repro_lint_code_writes_lock_inventory(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "locks.json"
    assert main(["lint-code", "src/repro", "--locks", str(out)]) == 0
    capsys.readouterr()
    with open(LOCKS_PATH, encoding="utf-8") as handle:
        assert json.load(handle) == json.loads(out.read_text())


def test_changed_mode_rejects_explicit_paths():
    from repro_analyzer.cli import main as analyzer_main

    assert analyzer_main(["src/repro", "--changed"]) == 2


def test_changed_python_files_diffs_against_a_ref(tmp_path):
    from repro_analyzer.cli import changed_python_files

    def git(*args):
        subprocess.run(
            ("git", "-C", str(tmp_path)) + args, check=True,
            capture_output=True,
            env={**os.environ, "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                 "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
        )

    git("init", "-q")
    (tmp_path / "a.py").write_text("A = 1\n")
    (tmp_path / "ignored.txt").write_text("not python\n")
    git("add", "a.py", "ignored.txt")
    git("commit", "-qm", "seed")
    (tmp_path / "a.py").write_text("A = 2\n")
    (tmp_path / "b.py").write_text("B = 1\n")
    (tmp_path / "ignored.txt").write_text("still not python\n")
    assert changed_python_files(str(tmp_path), "HEAD") == ["a.py", "b.py"]
    with pytest.raises(ValueError, match="git"):
        changed_python_files(str(tmp_path), "no-such-ref")


def test_repro_lint_code_counts_runs():
    from repro import obs
    from repro.cli import main

    with obs.use_registry() as registry:
        main(["lint-code", "src/repro"])
        snapshot = registry.snapshot()
    runs = [
        entry for entry in snapshot["counters"]
        if entry["name"] == "lint.runs" and entry["labels"].get("tool") == "code"
    ]
    assert runs and runs[0]["value"] == 1


def test_lint_query_and_lint_data_count_runs(tmp_path, capsys):
    from repro import obs
    from repro.cli import main

    data = tmp_path / "d.nt"
    data.write_text(
        "<http://example.org/s> <http://example.org/p> <http://example.org/o> .\n"
    )
    with obs.use_registry() as registry:
        main(["lint-query", "SELECT ?s WHERE { ?s ?p ?o }"])
        main(["lint-data", str(data)])
        snapshot = registry.snapshot()
    capsys.readouterr()
    tools = {
        entry["labels"].get("tool"): entry["value"]
        for entry in snapshot["counters"] if entry["name"] == "lint.runs"
    }
    assert tools.get("query") == 1
    assert tools.get("data") == 1
