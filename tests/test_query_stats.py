"""Tests for per-query resource accounting (QueryStats) and the slowlog."""

import json

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import accounting, slowlog
from repro.obs.accounting import QueryStats
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.sparql.prepared import clear_plan_cache, plan_cache_info, prepare


@pytest.fixture()
def graph() -> Graph:
    graph = Graph(name="g")
    name = URIRef("http://example.org/name")
    knows = URIRef("http://example.org/knows")
    people = [URIRef(f"http://example.org/p{i}") for i in range(12)]
    for index, person in enumerate(people):
        graph.add((person, name, Literal(f"name{index}")))
        graph.add((person, knows, people[(index + 1) % len(people)]))
    return graph


@pytest.fixture()
def accounted():
    """Enable accounting (and a fresh plan cache) for one test."""
    clear_plan_cache()
    accounting.enable()
    try:
        with obs.use_registry():
            yield
    finally:
        accounting.disable()
        slowlog.disable()


SELECT = "SELECT ?p ?n WHERE { ?p <http://example.org/name> ?n } LIMIT 4"


class TestQueryStatsCollection:
    def test_disabled_by_default_attaches_nothing(self, graph):
        clear_plan_cache()
        result = prepare(SELECT).execute(graph)
        assert result.stats is None

    def test_select_stats_populated(self, graph, accounted):
        result = prepare(SELECT).execute(graph)
        stats = result.stats
        assert stats is not None
        assert stats.kind == "select"
        assert stats.rows_out == 4
        assert stats.wall_seconds > 0
        assert stats.decodes > 0  # result terms decoded from IDs
        assert "match" in stats.phases
        assert stats.strategies  # at least one join strategy metered
        for record in stats.strategies.values():
            assert record["patterns"] >= 1
            assert record["rows_out"] >= 0

    def test_plan_cache_hit_flag_false_then_true(self, graph, accounted):
        first = prepare(SELECT).execute(graph)
        assert first.stats.plan_cache_hit is False
        second = prepare(SELECT).execute(graph)
        assert second.stats.plan_cache_hit is True

    def test_ask_and_construct_stats(self, graph, accounted):
        assert prepare("ASK { ?s ?p ?o }").execute(graph) is True
        constructed = prepare(
            "CONSTRUCT { ?p <http://example.org/alias> ?n } "
            "WHERE { ?p <http://example.org/name> ?n }"
        ).execute(graph)
        assert len(constructed) == 12

    def test_to_dict_round_trips_through_json(self, graph, accounted):
        stats = prepare(SELECT).execute(graph).stats
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["kind"] == "select"
        assert payload["rows_out"] == 4

    def test_results_identical_with_accounting(self, graph):
        clear_plan_cache()
        baseline = prepare(SELECT).execute(graph).as_tuples()
        clear_plan_cache()
        accounting.enable()
        try:
            accounted_rows = prepare(SELECT).execute(graph).as_tuples()
        finally:
            accounting.disable()
        assert accounted_rows == baseline

    def test_plan_cache_info_shape(self, graph, accounted):
        prepare(SELECT).execute(graph)
        info = plan_cache_info()
        assert info["entries"] >= 1
        assert info["capacity"] >= info["entries"]
        assert info["misses"] >= 1


class TestFederatedStats:
    @pytest.fixture()
    def federation(self, graph):
        from repro.federation.endpoint import Endpoint
        from repro.federation.executor import FederatedEngine
        from repro.links import LinkSet

        other = Graph(name="other")
        name = URIRef("http://example.org/name")
        for i in range(3):
            other.add((URIRef(f"http://other.org/q{i}"), name, Literal(f"o{i}")))
        return FederatedEngine(
            [Endpoint(graph, "left"), Endpoint(other, "right")], LinkSet()
        )

    def test_federated_stats_attached(self, federation, accounted):
        result = federation.select(
            "SELECT ?p ?n WHERE { ?p <http://example.org/name> ?n } LIMIT 6"
        )
        stats = result.stats
        assert stats is not None
        assert stats.kind == "federated"
        assert stats.rows_out == 6
        assert stats.endpoint_requests > 0
        assert "source_select" in stats.phases
        assert "join" in stats.phases
        assert any(
            strategy.startswith("bound-join") for strategy in stats.strategies
        )

    def test_federated_disabled_attaches_nothing(self, federation):
        result = federation.select(
            "SELECT ?p WHERE { ?p <http://example.org/name> ?n } LIMIT 2"
        )
        assert result.stats is None


class TestSlowLog:
    def test_threshold_filters_fast_operations(self):
        log = slowlog.SlowLog(threshold=1.0)
        assert log.record("query", "fast", 0.5) is False
        assert log.record("query", "slow", 2.0) is True
        assert len(log) == 1

    def test_ring_is_bounded_but_recorded_total_grows(self):
        log = slowlog.SlowLog(capacity=3)
        for index in range(10):
            log.record("query", f"q{index}", float(index))
        assert len(log) == 3
        assert log.recorded == 10
        assert [entry["name"] for entry in log.entries()] == ["q7", "q8", "q9"]

    def test_render_slowest_first_with_detail_hints(self):
        log = slowlog.SlowLog()
        log.record("query", "cheap", 0.001, detail={"rows_out": 2})
        log.record("federated", "costly", 0.5, detail={"endpoint_requests": 9})
        text = log.render()
        lines = text.splitlines()
        assert "costly" in lines[1]  # slowest first
        assert "endpoint_requests=9" in lines[1]
        assert "rows_out=2" in lines[2]

    def test_flush_roundtrip(self, tmp_path):
        log = slowlog.SlowLog()
        log.record("episode", "alex#1", 0.25, detail={"feedback": 10})
        target = tmp_path / "slow.json"
        assert log.flush(str(target)) == str(target)
        payload = json.loads(target.read_text())
        assert payload["schema"] == slowlog.SLOWLOG_SCHEMA
        assert payload["entries"][0]["name"] == "alex#1"

    def test_flush_without_target_is_noop(self):
        assert slowlog.SlowLog().flush() is None

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ObsError):
            slowlog.SlowLog(threshold=-1.0)
        with pytest.raises(ObsError):
            slowlog.SlowLog(capacity=0)

    def test_configure_install_disable_cycle(self):
        assert slowlog.active() is None
        installed = slowlog.configure(threshold=0.5)
        assert slowlog.active() is installed
        assert slowlog.disable() is installed
        assert slowlog.active() is None

    def test_queries_recorded_when_active(self, graph, accounted):
        log = slowlog.configure(threshold=0.0)
        prepare(SELECT).execute(graph)
        entries = log.entries()
        assert len(entries) == 1
        assert entries[0]["kind"] == "query"
        assert entries[0]["name"] == SELECT
        assert entries[0]["detail"]["rows_out"] == 4

    def test_slowlog_alone_collects_stats_without_accounting(self, graph):
        """The slowlog implies per-query accounting for its entries."""
        clear_plan_cache()
        log = slowlog.configure(threshold=0.0)
        try:
            result = prepare(SELECT).execute(graph)
        finally:
            slowlog.disable()
        assert result.stats is not None
        assert log.entries()[0]["detail"]["decodes"] > 0


class TestQueryStatsUnit:
    def test_note_strategy_accumulates(self):
        stats = QueryStats("select")
        stats.note_strategy("hash-join", 10, 4, 0.5)
        stats.note_strategy("hash-join", 6, 2, 0.25)
        record = stats.strategies["hash-join"]
        assert record == {
            "patterns": 2, "rows_in": 16, "rows_out": 6, "seconds": 0.75,
        }

    def test_note_phase_accumulates(self):
        stats = QueryStats("ask")
        stats.note_phase("match", 0.1)
        stats.note_phase("match", 0.2)
        assert stats.phases["match"] == pytest.approx(0.3)

    def test_plan_cache_note_is_consumed_once(self):
        accounting.note_plan_cache(True)
        assert accounting.consume_plan_cache_note() is True
        assert accounting.consume_plan_cache_note() is None
