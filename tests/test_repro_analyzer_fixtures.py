"""Every ALEX-C* rule demonstrated on fixture code: one deliberate
violation per rule in ``tests/fixtures/analyzer/*_bad.py`` (exact code,
severity, line, and column pinned here) and a clean twin per rule proving
the compliant spelling stays silent.
"""

from __future__ import annotations

import os

import pytest

from repro_analyzer import AnalyzerConfig, analyze_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = "tests/fixtures/analyzer"

#: The fixture package's architecture, mirrored from the real config: the
#: boundary module, the shared-state owner, the designated writers of
#: Store, and the hot join kernel.
FIXTURE_CONFIG = AnalyzerConfig(
    library_roots=(FIXTURES + "/",),
    encode_boundary=("analyzer/boundary.py",),
    decode_boundary=("analyzer/boundary.py",),
    rng_sanctioned_modules=(),
    shared_state_owners={"_index": "analyzer/store.py"},
    designated_writers={
        "Store": ("__init__", "add"),
        "Journal": ("__init__", "append", "append_fast"),
        "SafeJournal": ("__init__", "append"),
    },
    hot_paths={
        "analyzer/hotpath_bad.py": ("join_kernel",),
        "analyzer/hotpath_clean.py": ("join_kernel",),
    },
)

CONTRACT_FAMILIES = ("encoding", "rng", "mutation", "cost", "concurrency")


def _analyze(paths: list[str]):
    result = analyze_paths(
        paths, REPO_ROOT, config=FIXTURE_CONFIG, families=CONTRACT_FAMILIES,
        registered_codes=set(),
    )
    return result.findings


@pytest.fixture(scope="module")
def all_findings():
    return _analyze([FIXTURES])


#: (file, code, severity, line, column) — one row per deliberate violation.
EXPECTED = [
    (f"{FIXTURES}/encoding_bad.py", "ALEX-C001", "error", 14, 35),
    (f"{FIXTURES}/encoding_bad.py", "ALEX-C002", "error", 19, 12),
    (f"{FIXTURES}/encoding_bad.py", "ALEX-C003", "warning", 24, 12),
    (f"{FIXTURES}/rng_bad.py", "ALEX-C010", "error", 9, 12),
    (f"{FIXTURES}/rng_bad.py", "ALEX-C011", "error", 14, 12),
    (f"{FIXTURES}/rng_bad.py", "ALEX-C012", "error", 24, 9),
    (f"{FIXTURES}/mutation_bad.py", "ALEX-C020", "error", 8, 5),
    (f"{FIXTURES}/mutation_bad.py", "ALEX-C021", "error", 15, 13),
    (f"{FIXTURES}/store.py", "ALEX-C020", "error", 21, 5),
    (f"{FIXTURES}/hotpath_bad.py", "ALEX-C030", "warning", 9, 16),
    (f"{FIXTURES}/hotpath_bad.py", "ALEX-C031", "warning", 11, 9),
    (f"{FIXTURES}/hotpath_bad.py", "ALEX-C032", "info", 14, 24),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C040", "error", 21, 12),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C040", "error", 37, 16),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C040", "error", 41, 9),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C041", "error", 66, 13),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C041", "error", 71, 13),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C042", "warning", 51, 13),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C042", "warning", 86, 12),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C042", "warning", 92, 9),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C043", "error", 77, 5),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C044", "warning", 46, 13),
    (f"{FIXTURES}/concurrency_bad.py", "ALEX-C050", "error", 110, 9),
]


@pytest.mark.parametrize(
    "path,code,severity,line,column", EXPECTED,
    ids=[f"{row[1]}@{os.path.basename(row[0])}" for row in EXPECTED],
)
def test_each_rule_fires_at_the_pinned_position(
    all_findings, path, code, severity, line, column
):
    matches = [
        f for f in all_findings
        if f.path == path and f.code == code and f.line == line
    ]
    assert matches, (
        f"expected {code} at {path}:{line} — got "
        f"{[f.format() for f in all_findings if f.path == path]}"
    )
    finding = matches[0]
    assert finding.severity == severity
    assert finding.column == column


def test_exactly_the_pinned_violations_and_nothing_else(all_findings):
    """No extra findings anywhere in the fixture package: the clean twins
    (and the boundary/owner modules outside their violation lines) are
    silent."""
    actual = sorted((f.path, f.code, f.line, f.column) for f in all_findings)
    expected = sorted((path, code, line, column)
                      for path, code, severity, line, column in EXPECTED)
    assert actual == expected


@pytest.mark.parametrize("clean", [
    "encoding_clean.py", "rng_clean.py", "mutation_clean.py",
    "hotpath_clean.py", "concurrency_clean.py", "boundary.py",
])
def test_clean_twins_are_silent(clean):
    findings = _analyze([f"{FIXTURES}/{clean}"])
    assert findings == [], [f.format() for f in findings]


def test_writer_inventory_covers_the_fixture_store():
    result = analyze_paths(
        [FIXTURES], REPO_ROOT, config=FIXTURE_CONFIG,
        families=("mutation",), registered_codes=set(),
    )
    inventory = result.writer_inventory
    assert set(inventory) == {"Store", "Journal", "SafeJournal"}
    store = inventory["Store"]
    assert store["module"] == f"{FIXTURES}/store.py"
    assert store["designated"] == ["__init__", "add"]
    assert set(store["writers"]) == {"__init__", "add", "rebuild"}
    assert store["writers"]["rebuild"] == ["_index", "size"]


def test_lock_inventory_covers_the_fixture_locks():
    """The concurrency pass inventories every discovered lock: its kind,
    the attributes it guards, and where it is acquired."""
    result = analyze_paths(
        [FIXTURES], REPO_ROOT, config=FIXTURE_CONFIG,
        families=("concurrency",), registered_codes=set(),
    )
    inventory = result.lock_inventory
    bad = f"{FIXTURES}/concurrency_bad.py"
    assert f"{bad}::Meter" in inventory
    assert f"{bad}::Ledger" in inventory
    assert f"{bad}::<module>" in inventory
    meter = inventory[f"{bad}::Meter"]["locks"]["_lock"]
    assert meter["kind"] == "Lock"
    assert meter["guards"] == ["_count", "_samples"]
    assert "add" in meter["acquired_in"]
    module = inventory[f"{bad}::<module>"]["locks"]["_REGISTRY_LOCK"]
    assert module["guards"] == ["_registry"]
    ledger = inventory[f"{bad}::Ledger"]["locks"]
    assert set(ledger) == {"_accounts_lock", "_audit_lock"}
    # the clean twin's helper-propagated guards are inventoried too
    clean = f"{FIXTURES}/concurrency_clean.py"
    safe_meter = inventory[f"{clean}::SafeMeter"]["locks"]["_lock"]
    assert safe_meter["guards"] == ["_count", "_samples"]
