"""Tests for the prepared-query API, the plan cache, and deprecation shims."""

import warnings

import pytest

import repro
from repro import obs
from repro.rdf import turtle
from repro.sparql import (
    PreparedQuery,
    Var,
    clear_plan_cache,
    evaluate_ask,
    evaluate_construct,
    evaluate_select,
    prepare,
    query,
)
from repro.sparql.parser import parse_query
from repro.sparql.prepared import PLAN_CACHE_SIZE

PRE = "PREFIX ex: <http://x/> "


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://x/> .
        ex:a ex:name "Alpha" ; ex:knows ex:b .
        ex:b ex:name "Bravo" ; ex:knows ex:c .
        ex:c ex:name "Carol" .
        """
    )


class TestPreparedQuery:
    def test_execute_select(self, graph):
        prepared = prepare(PRE + "SELECT ?n WHERE { ?p ex:name ?n }")
        result = prepared.execute(graph)
        assert {str(v) for v in result.column("n")} == {"Alpha", "Bravo", "Carol"}

    def test_execute_is_repeatable_and_graph_agnostic(self, graph):
        prepared = prepare(PRE + "ASK { ?p ex:knows ?q }")
        assert prepared.execute(graph) is True
        assert prepared.execute(turtle.load("")) is False
        assert prepared.execute(graph) is True

    def test_bindings_parameterize_execution(self, graph):
        prepared = prepare(PRE + "SELECT ?q WHERE { ?p ex:knows ?q }")
        full = prepared.execute(graph)
        assert len(full) == 2
        bound = prepared.execute(graph, bindings={"p": repro.URIRef("http://x/a")})
        assert [str(v) for v in bound.column("q")] == ["http://x/b"]

    def test_explain_static_and_analyze(self, graph):
        prepared = prepare(PRE + "SELECT ?n WHERE { ?p ex:name ?n }")
        static = prepared.explain(graph)
        assert not static.analyzed
        analyzed = prepared.explain(graph, analyze=True)
        assert analyzed.analyzed and len(analyzed.result) == 3

    def test_plan_is_the_parsed_query(self, graph):
        text = PRE + "SELECT ?n WHERE { ?p ex:name ?n }"
        prepared = prepare(text)
        assert type(prepared.plan) is type(parse_query(text))
        assert prepared.text == text


class TestPlanCache:
    def test_repeated_prepare_hits_cache(self):
        clear_plan_cache()
        text = PRE + "SELECT ?n WHERE { ?p ex:name ?n }"
        with obs.use_registry():
            first = prepare(text)
            second = prepare(text)
            snapshot = obs.snapshot()
            assert first is second
            assert obs.counter_total(snapshot, "sparql.plan_cache.misses") == 1
            assert obs.counter_total(snapshot, "sparql.plan_cache.hits") == 1

    def test_query_wrapper_increments_cache_hits(self, graph):
        clear_plan_cache()
        text = PRE + "SELECT ?n WHERE { ?p ex:name ?n }"
        with obs.use_registry():
            query(graph, text)
            query(graph, text)
            snapshot = obs.snapshot()
            assert obs.counter_total(snapshot, "sparql.plan_cache.hits") == 1
            assert obs.counter_total(snapshot, "sparql.queries") == 2

    def test_cache_is_bounded_lru(self):
        clear_plan_cache()
        template = PRE + "SELECT ?n WHERE {{ ?p ex:name ?n FILTER (?n != \"{i}\") }}"
        oldest = prepare(template.format(i="first"))
        for i in range(PLAN_CACHE_SIZE):
            prepare(template.format(i=i))
        with obs.use_registry():
            again = prepare(template.format(i="first"))
            assert obs.counter_total(obs.snapshot(), "sparql.plan_cache.misses") == 1
        assert again is not oldest  # evicted and reparsed

    def test_clear_plan_cache_reports_count(self):
        clear_plan_cache()
        prepare(PRE + "ASK { ?s ?p ?o }")
        assert clear_plan_cache() == 1
        assert clear_plan_cache() == 0


class TestDeprecatedEntryPoints:
    def test_evaluate_select_warns_but_works(self, graph):
        parsed = parse_query(PRE + "SELECT ?n WHERE { ?p ex:name ?n }")
        with pytest.warns(DeprecationWarning, match="evaluate_select"):
            result = evaluate_select(graph, parsed)
        assert len(result) == 3

    def test_evaluate_ask_warns_but_works(self, graph):
        parsed = parse_query(PRE + "ASK { ?p ex:knows ?q }")
        with pytest.warns(DeprecationWarning, match="evaluate_ask"):
            assert evaluate_ask(graph, parsed) is True

    def test_evaluate_construct_warns_but_works(self, graph):
        parsed = parse_query(
            PRE + "CONSTRUCT { ?q ex:knownBy ?p } WHERE { ?p ex:knows ?q }"
        )
        with pytest.warns(DeprecationWarning, match="evaluate_construct"):
            constructed = evaluate_construct(graph, parsed)
        assert len(constructed) == 2

    def test_prepared_path_does_not_warn(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            prepare(PRE + "SELECT ?n WHERE { ?p ex:name ?n }").execute(graph)
            query(graph, PRE + "ASK { ?p ex:knows ?q }")


class TestFacadeExports:
    def test_prepare_reachable_from_top_level(self, graph):
        prepared = repro.prepare(PRE + "SELECT ?n WHERE { ?p ex:name ?n }")
        assert isinstance(prepared, repro.PreparedQuery)
        assert isinstance(prepared, PreparedQuery)
        assert len(prepared.execute(graph)) == 3

    def test_term_dictionary_exported(self):
        dictionary = repro.TermDictionary()
        term = repro.URIRef("http://x/a")
        assert dictionary.decode(dictionary.encode(term)) == term

    def test_version_bumped(self):
        assert repro.__version__ == "1.10.0"

    def test_query_result_column_var(self, graph):
        result = query(graph, PRE + "SELECT ?n WHERE { ?p ex:name ?n }")
        assert len(result.column(Var("n"))) == 3
