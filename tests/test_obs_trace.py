"""Unit tests for repro.obs.trace: the tracer, sampling, export, composition."""

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import trace
from repro.obs.trace import (
    TRACE_SCHEMA,
    Tracer,
    load_jsonl,
    render_summary,
    render_waterfall,
    write_jsonl,
)


class TestTracerBasics:
    def test_span_assigns_trace_and_span_ids(self):
        tracer = Tracer(seed=0)
        with tracer.span("outer.op.run") as outer:
            assert outer.sampled
            assert outer.trace_id is not None
            assert outer.parent_id is None
            with tracer.span("inner.op.run") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        records = tracer.records()
        assert [r["name"] for r in records] == ["inner.op.run", "outer.op.run"]
        assert all(r["kind"] == "span" for r in records)
        assert records[0]["parent"] == records[1]["span"]
        assert records[1]["parent"] is None

    def test_event_attaches_to_innermost_span(self):
        tracer = Tracer(seed=0)
        with tracer.span("outer.op.run"), tracer.span("inner.op.run") as inner:
            tracer.event("thing.happened", value=3)
        event = next(r for r in tracer.records() if r["kind"] == "event")
        assert event["trace"] == inner.trace_id
        assert event["parent"] == inner.span_id
        assert event["attrs"] == {"value": 3}

    def test_event_outside_span_is_traceless(self):
        tracer = Tracer(seed=0)
        tracer.event("orphan.event.fired")
        (record,) = tracer.records()
        assert record["trace"] is None
        assert record["parent"] is None
        assert record["kind"] == "event"

    def test_exception_inside_span_records_error_attr(self):
        tracer = Tracer(seed=0)
        with pytest.raises(ValueError):
            with tracer.span("bad.op.run"):
                raise ValueError("boom")
        (record,) = tracer.records()
        assert record["attrs"]["error"] == "ValueError"
        assert record["dur"] >= 0.0

    def test_attrs_are_coerced_to_json_atoms(self):
        tracer = Tracer(seed=0)
        tracer.event(
            "coerce.check.run",
            items={"b", "a"},
            mapping={1: object},
            uri=pytest,  # arbitrary non-atom -> str()
        )
        attrs = tracer.records()[0]["attrs"]
        assert attrs["items"] == ["a", "b"]
        assert isinstance(attrs["uri"], str)
        assert list(attrs["mapping"]) == ["1"]

    def test_invalid_construction_rejected(self):
        with pytest.raises(ObsError):
            Tracer(capacity=0)
        with pytest.raises(ObsError):
            Tracer(sample=1.5)


class TestDeterminism:
    def test_seeded_tracers_produce_identical_ids(self):
        def run(tracer):
            with tracer.span("a.b.c", n=1):
                tracer.event("a.b.d")
                with tracer.span("a.b.e"):
                    pass
            return [(r["trace"], r["span"], r["parent"]) for r in tracer.records()]

        assert run(Tracer(seed=42)) == run(Tracer(seed=42))
        assert run(Tracer(seed=42)) != run(Tracer(seed=43))


class TestSampling:
    def test_sample_zero_records_nothing(self):
        tracer = Tracer(sample=0.0, seed=0)
        with tracer.span("never.kept.run") as handle:
            assert not handle.sampled
            assert handle.trace_id is None
            tracer.event("inner.event.fired")
            handle.event("direct.event.fired")
        assert len(tracer) == 0

    def test_sampling_decision_made_at_root_and_inherited(self):
        tracer = Tracer(sample=0.5, seed=1)
        kept = 0
        for _ in range(50):
            with tracer.span("root.op.run") as root:
                with tracer.span("child.op.run") as child:
                    assert child.sampled == root.sampled
                kept += 1 if root.sampled else 0
        assert 0 < kept < 50
        # every buffered record belongs to a sampled trace
        assert all(r["trace"] is not None for r in tracer.records())


class TestRingBuffer:
    def test_capacity_evicts_oldest_and_counts_dropped(self):
        tracer = Tracer(capacity=4, seed=0)
        for index in range(10):
            tracer.event("tick.event.fired", index=index)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [r["attrs"]["index"] for r in tracer.records()] == [6, 7, 8, 9]

    def test_compaction_keeps_order_over_many_wraps(self):
        tracer = Tracer(capacity=3, seed=0)
        for index in range(100):
            tracer.event("tick.event.fired", index=index)
        assert [r["attrs"]["index"] for r in tracer.records()] == [97, 98, 99]
        assert tracer.dropped == 97

    def test_clear_resets_buffer_and_dropped(self):
        tracer = Tracer(capacity=2, seed=0)
        for _ in range(5):
            tracer.event("tick.event.fired")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestPayloadAbsorb:
    def test_holder_absorbs_worker_payload(self):
        worker = Tracer(seed=0)
        worker.event("worker.event.fired", partition=1)
        holder = Tracer(enabled=False)
        holder.absorb(worker.payload())
        assert len(holder) == 1
        # holder records nothing of its own
        holder.event("local.event.fired")
        with holder.span("local.span.run"):
            pass
        assert len(holder) == 1

    def test_absorb_rejects_unknown_schema(self):
        with pytest.raises(ObsError):
            Tracer().absorb({"schema": "not-a-trace", "records": []})

    def test_absorb_sums_dropped(self):
        a = Tracer(capacity=1, seed=0)
        a.event("x.y.z")
        a.event("x.y.z")
        assert a.dropped == 1
        b = Tracer(seed=0)
        b.absorb(a.payload())
        assert b.dropped == 1


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        tracer = Tracer(seed=7)
        with tracer.span("root.op.run", n=2):
            tracer.event("leaf.event.fired", q=0.5)
        path = str(tmp_path / "trace.jsonl")
        tracer.write_jsonl(path)
        payload = load_jsonl(path)
        assert payload["schema"] == TRACE_SCHEMA
        assert payload["records"] == tracer.records()
        assert payload["dropped"] == 0

    def test_truncated_file_fails_loudly(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, [{"name": "a.b.c"}, {"name": "a.b.d"}])
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ObsError, match="truncated"):
            load_jsonl(path)

    def test_non_trace_file_rejected(self, tmp_path):
        path = str(tmp_path / "junk.jsonl")
        with open(path, "w") as handle:
            handle.write('{"schema": "something-else"}\n')
        with pytest.raises(ObsError):
            load_jsonl(path)
        empty = str(tmp_path / "empty.jsonl")
        open(empty, "w").close()
        with pytest.raises(ObsError, match="empty"):
            load_jsonl(empty)


class TestModuleApi:
    def test_install_active_uninstall(self):
        with obs.use_registry(obs.Registry("t")):
            assert trace.active() is None
            assert trace.span("noop.span.run") is trace._NOOP_SPAN
            tracer = trace.install(seed=0)
            assert trace.active() is tracer
            with trace.span("mod.api.run") as handle:
                trace.event("mod.event.fired")
                assert trace.current_trace_id() == handle.trace_id
            assert trace.current_trace_id() is None
            removed = trace.uninstall()
            assert removed is tracer
            assert trace.active() is None
        assert len(tracer) == 2

    def test_holder_is_not_active(self):
        with obs.use_registry(obs.Registry("t")) as registry:
            registry.tracer = Tracer(enabled=False)
            assert trace.active() is None


class TestRegistryComposition:
    def test_snapshot_carries_events_and_merge_absorbs(self):
        with obs.use_registry(obs.Registry("worker")) as worker:
            trace.install(seed=0)
            obs.inc("work.items.done")
            trace.event("worker.event.fired", partition=0)
            snap = worker.snapshot()
        assert snap["events"]["schema"] == TRACE_SCHEMA
        assert len(snap["events"]["records"]) == 1

        with obs.use_registry(obs.Registry("parent")) as parent:
            parent.merge(snap)
            assert parent.tracer is not None
            assert not parent.tracer.enabled  # holder, not a live tracer
            assert len(parent.tracer) == 1
            merged = parent.snapshot()
        assert len(merged["events"]["records"]) == 1

    def test_snapshot_omits_events_when_tracer_is_empty(self):
        with obs.use_registry(obs.Registry("quiet")) as registry:
            trace.install(seed=0)
            snap = registry.snapshot()
        assert "events" not in snap

    def test_render_mentions_buffered_events(self):
        with obs.use_registry(obs.Registry("r")) as registry:
            trace.install(seed=0)
            trace.event("some.event.fired")
            text = registry.render()
        assert "trace events: 1 buffered" in text


class TestRendering:
    def _tracer(self):
        tracer = Tracer(seed=0)
        with tracer.span("root.op.run"):
            tracer.event("leaf.event.fired", k="v")
            with tracer.span("child.op.run"):
                pass
        tracer.event("orphan.event.fired")
        return tracer

    def test_render_summary_counts_and_slowest(self):
        tracer = self._tracer()
        text = render_summary(tracer.records(), dropped=tracer.dropped)
        assert "4 record(s) in 1 trace(s) + 1 trace-less" in text
        assert "events by type:" in text
        assert "slowest spans" in text
        assert "root.op.run" in text

    def test_render_waterfall_tree_and_filter(self):
        tracer = self._tracer()
        records = tracer.records()
        text = render_waterfall(records)
        assert "root.op.run" in text
        assert "  child.op.run" in text  # indented under the root
        assert "1 trace-less event(s):" in text
        trace_id = next(r["trace"] for r in records if r["trace"])
        assert render_waterfall(records, trace_id=trace_id[:6]).startswith("trace ")
        assert render_waterfall(records, trace_id="zzzz") == "no trace matching 'zzzz'"
