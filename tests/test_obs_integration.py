"""End-to-end check that the instrumented stack actually reports metrics."""

import pytest

from repro import (
    AlexConfig,
    AlexEngine,
    Endpoint,
    FeatureSpace,
    FederatedEngine,
    FeedbackSession,
    GroundTruthOracle,
    load_pair,
    obs,
    paris_links,
)
from repro.sparql.eval import query as run_query

QUERY = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5"


@pytest.fixture(scope="module")
def workload():
    pair = load_pair("dbpedia_nba_nytimes")
    default_before = obs.counter_total(obs.snapshot(), "federation.queries")
    with obs.use_registry() as registry:
        space = FeatureSpace.build(pair.left, pair.right)
        initial = paris_links(pair.left, pair.right, score_threshold=0.8)
        engine = AlexEngine(space, initial, AlexConfig(episode_size=10, seed=7))
        session = FeedbackSession(engine, GroundTruthOracle(pair.ground_truth), seed=7)
        session.run(episode_size=10, max_episodes=2)

        run_query(pair.left, QUERY)
        federation = FederatedEngine(
            [Endpoint(pair.left, name="left"), Endpoint(pair.right, name="right")],
            links=engine.candidates,
        )
        federation.select(QUERY)
        snapshot = registry.snapshot()
    default_after = obs.counter_total(obs.snapshot(), "federation.queries")
    return snapshot, default_after - default_before


@pytest.fixture(scope="module")
def workload_snapshot(workload):
    return workload[0]


class TestQuickstartMetrics:
    def test_engine_metrics_nonzero(self, workload_snapshot):
        assert obs.counter_total(workload_snapshot, "alex.feedback.processed") > 0
        assert obs.counter_total(workload_snapshot, "alex.episodes") == 2

    def test_sparql_metrics_nonzero(self, workload_snapshot):
        assert obs.counter_total(workload_snapshot, "sparql.queries") > 0
        assert obs.counter_total(workload_snapshot, "sparql.patterns.matched") > 0

    def test_federation_metrics_nonzero(self, workload_snapshot):
        assert obs.counter_total(workload_snapshot, "federation.queries") == 1
        assert obs.counter_total(workload_snapshot, "federation.requests") > 0

    def test_space_metrics_nonzero(self, workload_snapshot):
        scanned = obs.counter_total(workload_snapshot, "space.pairs.scanned")
        admitted = obs.counter_total(workload_snapshot, "space.pairs.admitted")
        assert scanned >= admitted > 0

    def test_span_tree_recorded(self, workload_snapshot):
        paths = {entry["path"] for entry in workload_snapshot["spans"]}
        assert "episode" in paths
        assert "episode/explore" in paths

    def test_nothing_leaked_to_default_registry(self, workload):
        # the module fixture ran inside use_registry(); the process-global
        # default must not have accumulated this workload's events (other
        # tests may have bumped it, so compare before/after the fixture)
        assert workload[1] == 0
