"""Tests for the SPARQL static analyzer (``repro.sparql.analysis``).

Every ALEX-* diagnostic code is covered by at least one test asserting the
code, the severity, and the source location, per the code table in
``docs/diagnostics.md``.
"""

import pytest

from repro import obs
from repro.errors import QueryAnalysisError
from repro.federation import Endpoint, FederatedEngine
from repro.rdf import turtle
from repro.sparql import CODES, Diagnostic, analyze_query, check_query, query, parse_query
from repro.sparql.analysis import certain_vars, possible_vars
from repro.sparql.ast import Var


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


def only(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, f"expected {code} in {codes_of(diagnostics)}"
    return found[0]


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://ex/> .
        ex:a ex:name "A" . ex:b ex:name "B" . ex:c ex:name "C" .
        ex:d ex:name "D" . ex:e ex:name "E" . ex:f ex:name "F" .
        ex:a ex:rare ex:b .
        ex:a ex:common ex:b . ex:b ex:common ex:c . ex:c ex:common ex:d .
        ex:d ex:common ex:e . ex:e ex:common ex:f . ex:f ex:common ex:a .
        ex:a ex:common ex:d .
        """,
        name="ex",
    )


class TestDiagnosticRecord:
    def test_code_table_is_consistent(self):
        for code, (severity, summary) in CODES.items():
            assert code.startswith("ALEX-")
            assert severity in ("error", "warning", "info")
            assert summary

    def test_format_and_to_dict(self):
        diagnostic = Diagnostic("ALEX-E001", "error", "message", line=2, column=7, hint="fix")
        assert diagnostic.format() == "2:7: ALEX-E001 error: message (hint: fix)"
        assert diagnostic.to_dict()["line"] == 2
        assert diagnostic.is_error

    def test_diagnostics_ordered_by_position(self):
        diagnostics = analyze_query(
            "SELECT ?nope WHERE {\n"
            "  ?s <http://ex/p> ?o .\n"
            "  FILTER(1 > 2)\n"
            "  FILTER(?zzz = 1)\n"
            "}"
        )
        positions = [(d.line, d.column) for d in diagnostics]
        assert positions == sorted(positions)


class TestProjectionRules:
    def test_e001_unbound_projection(self):
        diagnostic = only(analyze_query("SELECT ?name WHERE { ?s ?p ?o }"), "ALEX-E001")
        assert diagnostic.severity == "error"
        assert (diagnostic.line, diagnostic.column) == (1, 8)
        assert "?name" in diagnostic.message

    def test_e001_construct_template(self):
        diagnostics = analyze_query(
            "CONSTRUCT { ?s <http://ex/p> ?nope } WHERE { ?s ?p ?o }"
        )
        assert "ALEX-E001" in codes_of(diagnostics)

    def test_w106_duplicate_projection(self):
        diagnostic = only(analyze_query("SELECT ?s ?s WHERE { ?s ?p ?o }"), "ALEX-W106")
        assert diagnostic.severity == "warning"
        assert (diagnostic.line, diagnostic.column) == (1, 11)  # the second ?s

    def test_e002_non_grouped_projection(self):
        diagnostic = only(
            analyze_query(
                "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p"
            ),
            "ALEX-E002",
        )
        assert diagnostic.severity == "error"
        assert (diagnostic.line, diagnostic.column) == (1, 8)

    def test_e003_aggregate_arg_never_bound(self):
        diagnostic = only(
            analyze_query("SELECT (COUNT(?zzz) AS ?n) WHERE { ?s ?p ?o }"), "ALEX-E003"
        )
        assert diagnostic.severity == "error"
        assert diagnostic.line == 1

    def test_w109_group_by_never_bound(self):
        diagnostic = only(
            analyze_query(
                "SELECT (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?ghost"
            ),
            "ALEX-W109",
        )
        assert diagnostic.severity == "warning"

    def test_projection_via_bind_and_values_is_clean(self):
        diagnostics = analyze_query(
            'SELECT ?v ?w WHERE { ?s <http://ex/p> ?o . '
            'BIND(STR(?o) AS ?v) VALUES ?w { "x" } }'
        )
        assert "ALEX-E001" not in codes_of(diagnostics)


class TestFilterRules:
    def test_e004_constant_false(self):
        diagnostic = only(
            analyze_query("SELECT * WHERE { ?s <http://ex/p> ?o FILTER(1 > 2) }"),
            "ALEX-E004",
        )
        assert diagnostic.severity == "error"
        assert (diagnostic.line, diagnostic.column) == (1, 38)

    def test_e004_type_incompatible_constants(self):
        diagnostics = analyze_query(
            'SELECT * WHERE { ?s <http://ex/p> ?o FILTER("a" < 5) }'
        )
        assert "ALEX-E004" in codes_of(diagnostics)

    def test_e004_mixed_kind_var_constraints(self):
        diagnostic = only(
            analyze_query(
                'SELECT * WHERE { ?s <http://ex/p> ?o '
                'FILTER(?o > 5) FILTER(?o < "abc") }'
            ),
            "ALEX-E004",
        )
        assert "numeric and string" in diagnostic.message

    def test_e004_self_comparison(self):
        diagnostic = only(
            analyze_query("SELECT * WHERE { ?s <http://ex/p> ?o FILTER(?o != ?o) }"),
            "ALEX-E004",
        )
        assert "?o != ?o" in diagnostic.message

    def test_e005_contradictory_range(self):
        diagnostic = only(
            analyze_query(
                "SELECT * WHERE { ?s <http://ex/p> ?o FILTER(?o > 5 && ?o < 3) }"
            ),
            "ALEX-E005",
        )
        assert diagnostic.severity == "error"
        assert (diagnostic.line, diagnostic.column) == (1, 38)

    def test_e005_across_filters_in_one_group(self):
        diagnostics = analyze_query(
            "SELECT * WHERE { ?s <http://ex/p> ?o FILTER(?o >= 10) FILTER(?o <= 9) }"
        )
        assert "ALEX-E005" in codes_of(diagnostics)

    def test_e005_contradictory_equality_pins(self):
        diagnostics = analyze_query(
            "SELECT * WHERE { ?s <http://ex/p> ?o FILTER(?o = 3 && ?o = 4) }"
        )
        assert "ALEX-E005" in codes_of(diagnostics)

    def test_satisfiable_range_is_clean(self):
        diagnostics = analyze_query(
            "SELECT * WHERE { ?s <http://ex/p> ?o FILTER(?o > 3 && ?o <= 5) }"
        )
        assert "ALEX-E005" not in codes_of(diagnostics)
        assert "ALEX-E004" not in codes_of(diagnostics)

    def test_e006_filter_on_never_bound_var(self):
        diagnostic = only(
            analyze_query("SELECT * WHERE { ?s <http://ex/p> ?o FILTER(?zzz > 5) }"),
            "ALEX-E006",
        )
        assert diagnostic.severity == "error"
        assert "?zzz" in diagnostic.message

    def test_bound_is_exempt_from_e006(self):
        diagnostics = analyze_query(
            "SELECT * WHERE { ?s <http://ex/p> ?o FILTER(!BOUND(?maybe)) }"
        )
        assert "ALEX-E006" not in codes_of(diagnostics)

    def test_w102_constant_true(self):
        diagnostic = only(
            analyze_query("SELECT * WHERE { ?s <http://ex/p> ?o FILTER(1 < 2) }"),
            "ALEX-W102",
        )
        assert diagnostic.severity == "warning"

    def test_w103_bound_on_certain_var(self):
        diagnostic = only(
            analyze_query("SELECT * WHERE { ?s <http://ex/p> ?o FILTER(!BOUND(?s)) }"),
            "ALEX-W103",
        )
        assert diagnostic.severity == "warning"
        assert "always false" in diagnostic.message

    def test_w103_bound_on_impossible_var(self):
        diagnostic = only(
            analyze_query("SELECT * WHERE { ?s <http://ex/p> ?o FILTER(BOUND(?never)) }"),
            "ALEX-W103",
        )
        assert "always false" in diagnostic.message

    def test_w108_filter_on_optional_only_var(self):
        diagnostic = only(
            analyze_query(
                "SELECT * WHERE { ?s <http://ex/p> ?o "
                "OPTIONAL { ?s <http://ex/q> ?v } FILTER(?v > 3) }"
            ),
            "ALEX-W108",
        )
        assert diagnostic.severity == "warning"
        assert "?v" in diagnostic.message


class TestStructuralRules:
    def test_w101_cartesian_product(self):
        diagnostic = only(
            analyze_query(
                "SELECT * WHERE { ?a <http://ex/p> ?b . ?c <http://ex/q> ?d }"
            ),
            "ALEX-W101",
        )
        assert diagnostic.severity == "warning"
        # reported at the second (disjoint) component
        assert (diagnostic.line, diagnostic.column) == (1, 40)

    def test_connected_patterns_are_clean(self):
        diagnostics = analyze_query(
            "SELECT * WHERE { ?a <http://ex/p> ?b . ?b <http://ex/q> ?c }"
        )
        assert "ALEX-W101" not in codes_of(diagnostics)

    def test_w104_non_well_designed_optional(self):
        diagnostic = only(
            analyze_query(
                "SELECT * WHERE { ?a <http://ex/p> ?b "
                "OPTIONAL { ?a <http://ex/q> ?v } { ?v <http://ex/r> ?c } }"
            ),
            "ALEX-W104",
        )
        assert diagnostic.severity == "warning"
        assert "?v" in diagnostic.message

    def test_well_designed_optional_is_clean(self):
        diagnostics = analyze_query(
            "SELECT * WHERE { ?a <http://ex/p> ?v "
            "OPTIONAL { ?a <http://ex/q> ?v } { ?v <http://ex/r> ?c } }"
        )
        assert "ALEX-W104" not in codes_of(diagnostics)

    def test_w105_dead_union_branch(self):
        diagnostic = only(
            analyze_query(
                "SELECT * WHERE { { ?s <http://ex/p> ?o FILTER(false) } "
                "UNION { ?s <http://ex/q> ?o } }"
            ),
            "ALEX-W105",
        )
        assert diagnostic.severity == "warning"
        assert diagnostics_have_one(diagnostic)

    def test_w105_empty_values_branch(self):
        diagnostics = analyze_query(
            "SELECT * WHERE { { ?s <http://ex/p> ?o VALUES ?s { } } "
            "UNION { ?s <http://ex/q> ?o } }"
        )
        assert "ALEX-W105" in codes_of(diagnostics)

    def test_live_union_is_clean(self):
        diagnostics = analyze_query(
            "SELECT * WHERE { { ?s <http://ex/p> ?o } UNION { ?s <http://ex/q> ?o } }"
        )
        assert "ALEX-W105" not in codes_of(diagnostics)

    def test_w107_empty_values(self):
        diagnostic = only(
            analyze_query("SELECT * WHERE { ?s <http://ex/p> ?o VALUES ?s { } }"),
            "ALEX-W107",
        )
        assert diagnostic.severity == "warning"
        assert diagnostic.line == 1

    def test_nested_union_scoping(self):
        # ?x binds in every branch of the nested union -> certain; projecting
        # it is fine, and BOUND(?x) is therefore constant
        diagnostics = analyze_query(
            "SELECT ?x WHERE { { { ?x <http://ex/p> ?a } UNION "
            "{ ?x <http://ex/q> ?b } } UNION { ?x <http://ex/r> ?c } "
            "FILTER(BOUND(?x)) }"
        )
        assert "ALEX-E001" not in codes_of(diagnostics)
        assert "ALEX-W103" in codes_of(diagnostics)

    def test_union_partial_binding_not_certain(self):
        # ?y binds in only one branch: possible but not certain
        parsed = parse_query(
            "SELECT * WHERE { { ?x <http://ex/p> ?y } UNION { ?x <http://ex/q> ?z } }"
        )
        assert Var("y") in possible_vars(parsed.where)
        assert Var("y") not in certain_vars(parsed.where)
        assert Var("x") in certain_vars(parsed.where)


def diagnostics_have_one(diagnostic):
    return diagnostic.line is not None


class TestCostLint:
    def test_i201_without_graph_flags_full_scan(self):
        diagnostic = only(analyze_query("SELECT ?s WHERE { ?s ?p ?o }"), "ALEX-I201")
        assert diagnostic.severity == "info"

    def test_i201_with_graph_uses_cardinality(self, graph):
        diagnostics = analyze_query(
            "SELECT ?s WHERE { ?s <http://ex/common> ?o }", graph=graph
        )
        assert "ALEX-I201" in codes_of(diagnostics)

    def test_i201_selective_pattern_is_clean(self, graph):
        diagnostics = analyze_query(
            "SELECT ?s WHERE { ?s <http://ex/rare> ?o }", graph=graph
        )
        assert "ALEX-I201" not in codes_of(diagnostics)


class TestSourceCheck:
    def test_w110_unmatched_pattern(self, graph):
        diagnostic = only(
            analyze_query(
                "SELECT ?s WHERE { ?s <http://nowhere/p> ?o }",
                endpoints=[Endpoint(graph, "ex")],
            ),
            "ALEX-W110",
        )
        assert diagnostic.severity == "warning"
        assert "ex" in diagnostic.message

    def test_matched_patterns_are_clean(self, graph):
        diagnostics = analyze_query(
            "SELECT ?s WHERE { ?s <http://ex/name> ?o }",
            endpoints=[Endpoint(graph, "ex")],
        )
        assert "ALEX-W110" not in codes_of(diagnostics)


class TestStrictMode:
    def test_check_query_raises_on_errors(self):
        with pytest.raises(QueryAnalysisError) as excinfo:
            check_query("SELECT ?name WHERE { ?s ?p ?o }")
        assert "ALEX-E001" in str(excinfo.value)
        assert any(d.code == "ALEX-E001" for d in excinfo.value.diagnostics)

    def test_check_query_returns_warnings(self):
        diagnostics = check_query(
            "SELECT * WHERE { ?s <http://ex/p> ?o VALUES ?s { } }"
        )
        assert "ALEX-W107" in codes_of(diagnostics)

    def test_strict_query_raises(self, graph):
        with pytest.raises(QueryAnalysisError):
            query(graph, "SELECT ?name WHERE { ?s ?p ?o }", strict=True)

    def test_default_query_unchanged(self, graph):
        result = query(graph, "SELECT ?name WHERE { ?s ?p ?o }")
        assert all(row == {} for row in result.rows)

    def test_strict_query_accepts_clean_query(self, graph):
        result = query(
            graph, "SELECT ?s WHERE { ?s <http://ex/rare> ?o }", strict=True
        )
        assert len(result) == 1

    def test_strict_federation_rejects_error_query(self, graph):
        engine = FederatedEngine([Endpoint(graph, "ex")], strict=True)
        with pytest.raises(QueryAnalysisError):
            engine.select("SELECT ?name WHERE { ?s <http://ex/name> ?o }")

    def test_default_federation_unchanged(self, graph):
        engine = FederatedEngine([Endpoint(graph, "ex")])
        result = engine.select("SELECT ?name WHERE { ?s <http://ex/name> ?o }")
        assert len(result.rows) == 6


class TestObsIntegration:
    def test_diagnostics_are_counted(self):
        with obs.use_registry() as registry:
            analyze_query("SELECT ?name WHERE { ?s <http://ex/p> ?o FILTER(1>2) }")
            snapshot = registry.snapshot()
        assert obs.counter_total(snapshot, "sparql.analysis.runs") == 1
        total = obs.counter_total(snapshot, "sparql.analysis.diagnostics")
        assert total == 2  # E001 + E004
        labels = [
            entry["labels"]
            for entry in snapshot["counters"]
            if entry["name"] == "sparql.analysis.diagnostics"
        ]
        assert {"code": "ALEX-E001", "severity": "error"} in labels
