"""Tests for loading external dataset pairs from N-Triples files."""

import pytest

from repro.datasets import load_pair_from_files
from repro.errors import DatasetError

LEFT_NT = """\
<http://a/lebron> <http://a/ont/name> "LeBron James" .
<http://a/durant> <http://a/ont/name> "Kevin Durant" .
"""

RIGHT_NT = """\
<http://b/lj> <http://b/ont/label> "Lebron James" .
<http://b/kd> <http://b/ont/label> "Kevin Durant" .
"""

TRUTH_NT = """\
<http://a/lebron> <http://www.w3.org/2002/07/owl#sameAs> <http://b/lj> .
<http://a/durant> <http://www.w3.org/2002/07/owl#sameAs> <http://b/kd> .
"""


@pytest.fixture()
def files(tmp_path):
    left = tmp_path / "left.nt"
    right = tmp_path / "right.nt"
    truth = tmp_path / "truth.nt"
    left.write_text(LEFT_NT)
    right.write_text(RIGHT_NT)
    truth.write_text(TRUTH_NT)
    return str(left), str(right), str(truth)


class TestLoadPairFromFiles:
    def test_loads_all_parts(self, files):
        pair = load_pair_from_files(*files, name="nba")
        assert len(pair.left) == 2
        assert len(pair.right) == 2
        assert len(pair.ground_truth) == 2
        assert pair.name == "nba"

    def test_empty_ground_truth_rejected(self, files, tmp_path):
        empty = tmp_path / "empty.nt"
        empty.write_text("<http://a/x> <http://a/p> <http://a/y> .\n")
        with pytest.raises(DatasetError):
            load_pair_from_files(files[0], files[1], str(empty))

    def test_reversed_orientation_detected(self, files, tmp_path):
        reversed_truth = tmp_path / "reversed.nt"
        reversed_truth.write_text(
            '<http://b/lj> <http://www.w3.org/2002/07/owl#sameAs> <http://a/lebron> .\n'
        )
        with pytest.raises(DatasetError):
            load_pair_from_files(files[0], files[1], str(reversed_truth))

    def test_pipeline_runs_on_loaded_pair(self, files):
        from repro.features import FeatureSpace
        from repro.paris import paris_links

        pair = load_pair_from_files(*files)
        space = FeatureSpace.build(pair.left, pair.right)
        links = paris_links(pair.left, pair.right, score_threshold=0.5)
        assert space.size >= 2
        assert len(links) >= 1
