"""Tests for the shared diagnostic code registry (``repro.diagnostics``)."""

from pathlib import Path

import pytest

import repro_analyzer  # registers the ALEX-C* code-analyzer table
from repro.diagnostics import (
    SEVERITIES,
    SEVERITY_RANK,
    all_codes,
    code_info,
    is_registered,
    meets_threshold,
    register_codes,
    severity_exit_code,
    severity_of,
)
from repro.errors import ReproError
from repro.rdf import validate as rdf_validate
from repro.sparql import analysis as sparql_analysis

DOCS = Path(__file__).resolve().parent.parent / "docs" / "diagnostics.md"


class TestRegistryContents:
    def test_codes_unique_across_analyzers(self):
        sparql_codes = set(sparql_analysis.CODES)
        rdf_codes = set(rdf_validate.CODES)
        analyzer_codes = set(repro_analyzer.CODES)
        assert not sparql_codes & rdf_codes
        assert not analyzer_codes & (sparql_codes | rdf_codes)
        assert set(all_codes()) == sparql_codes | rdf_codes | analyzer_codes

    def test_registered_severities_match_code_tables(self):
        for code, (severity, summary) in sparql_analysis.CODES.items():
            entry = code_info(code)
            assert entry.severity == severity
            assert entry.summary == summary
            assert entry.analyzer == "sparql.analysis"
        for code, (severity, _summary) in rdf_validate.CODES.items():
            assert code_info(code).severity == severity
            assert code_info(code).analyzer == "rdf.validate"
        for code, (severity, _summary) in repro_analyzer.CODES.items():
            assert code_info(code).severity == severity
            assert code_info(code).analyzer == "repro_analyzer"

    def test_every_code_documented(self):
        text = DOCS.read_text(encoding="utf-8")
        missing = [code for code in all_codes() if code not in text]
        assert not missing, f"codes absent from docs/diagnostics.md: {missing}"

    def test_anchor_points_into_docs(self):
        entry = code_info("ALEX-D101")
        assert entry.anchor == "diagnostics.md#alex-d101"


class TestRegistration:
    def test_reregistration_same_analyzer_is_idempotent(self):
        register_codes(rdf_validate.CODES, "rdf.validate")  # no raise

    def test_cross_analyzer_clash_raises(self):
        with pytest.raises(ReproError, match="already registered"):
            register_codes({"ALEX-D101": ("error", "impostor")}, "other.analyzer")

    def test_changed_entry_raises(self):
        with pytest.raises(ReproError, match="already registered"):
            register_codes({"ALEX-D101": ("warning", "different severity")}, "rdf.validate")

    def test_unknown_severity_raises(self):
        with pytest.raises(ReproError, match="unknown severity"):
            register_codes({"ALEX-Z999": ("fatal", "nope")}, "rdf.validate")

    def test_unknown_code_lookup_raises(self):
        assert not is_registered("ALEX-Z999")
        with pytest.raises(ReproError, match="unknown diagnostic code"):
            code_info("ALEX-Z999")


class TestSeverities:
    def test_rank_orders_most_severe_first(self):
        assert SEVERITIES == ("error", "warning", "info")
        assert SEVERITY_RANK["error"] < SEVERITY_RANK["warning"] < SEVERITY_RANK["info"]

    def test_severity_of(self):
        assert severity_of("ALEX-D101") == "error"
        assert severity_of("ALEX-D301") == "warning"
        assert severity_of("ALEX-C001") == "error"
        assert severity_of("ALEX-C032") == "info"

    def test_meets_threshold(self):
        assert meets_threshold("error", "error")
        assert meets_threshold("error", "info")
        assert not meets_threshold("info", "error")
        assert not meets_threshold("info", "warning")
        with pytest.raises(KeyError):
            meets_threshold("fatal", "error")

    def test_severity_exit_code_is_the_shared_fail_on_policy(self):
        assert severity_exit_code([], "error") == 0
        assert severity_exit_code(["info", "warning"], "error") == 0
        assert severity_exit_code(["info", "error"], "error") == 1
        assert severity_exit_code(["warning"], "warning") == 1
        assert severity_exit_code(["info"], "info") == 1
