"""Unit tests for the SPARQL parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Literal, URIRef, XSD_INTEGER
from repro.sparql.ast import (
    AskQuery,
    BGP,
    BooleanOp,
    Comparison,
    Filter,
    FunctionCall,
    OptionalPattern,
    SelectQuery,
    UnionPattern,
    Var,
)
from repro.sparql.parser import parse_query


class TestSelectParsing:
    def test_basic_select(self):
        q = parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o . }")
        assert isinstance(q, SelectQuery)
        assert q.variables == [Var("s")]
        bgp = q.where.children[0]
        assert isinstance(bgp, BGP)
        assert bgp.patterns[0].predicate == URIRef("http://x/p")

    def test_select_star(self):
        q = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert q.is_star
        assert set(q.projected()) == {Var("s"), Var("p"), Var("o")}

    def test_prefixes(self):
        q = parse_query(
            "PREFIX ex: <http://x/> SELECT ?s WHERE { ?s ex:p ex:o }"
        )
        pattern = q.where.children[0].patterns[0]
        assert pattern.predicate == URIRef("http://x/p")
        assert pattern.object == URIRef("http://x/o")

    def test_a_shorthand(self):
        q = parse_query("PREFIX ex: <http://x/> SELECT ?s WHERE { ?s a ex:T }")
        assert q.where.children[0].patterns[0].predicate == RDF.type

    def test_semicolon_and_comma(self):
        q = parse_query(
            "PREFIX ex: <http://x/> SELECT ?s WHERE { ?s ex:p ?a , ?b ; ex:q ?c . }"
        )
        assert len(q.where.children[0].patterns) == 3

    def test_distinct_limit_offset(self):
        q = parse_query("SELECT DISTINCT ?s WHERE { ?s ?p ?o } LIMIT 5 OFFSET 2")
        assert q.distinct and q.limit == 5 and q.offset == 2

    def test_order_by(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?o")
        assert q.order_by[0].descending is True
        assert q.order_by[1].descending is False

    def test_typed_literal_object(self):
        q = parse_query('SELECT ?s WHERE { ?s <http://x/p> "5"^^<%s> }' % XSD_INTEGER)
        assert q.where.children[0].patterns[0].object == Literal("5", datatype=XSD_INTEGER)

    def test_integer_shorthand(self):
        q = parse_query("SELECT ?s WHERE { ?s <http://x/p> 1984 }")
        assert q.where.children[0].patterns[0].object == Literal("1984", datatype=XSD_INTEGER)


class TestFilterParsing:
    def test_comparison(self):
        q = parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o FILTER (?o > 5) }")
        flt = next(c for c in q.where.children if isinstance(c, Filter))
        assert isinstance(flt.expression, Comparison)
        assert flt.expression.op == ">"

    def test_boolean_combination(self):
        q = parse_query(
            'SELECT ?s WHERE { ?s ?p ?o FILTER (?o > 1 && ?o < 9 || REGEX(?o, "x")) }'
        )
        flt = next(c for c in q.where.children if isinstance(c, Filter))
        assert isinstance(flt.expression, BooleanOp)
        assert flt.expression.op == "||"

    def test_function_calls(self):
        q = parse_query('SELECT ?s WHERE { ?s ?p ?o FILTER (CONTAINS(STR(?o), "a")) }')
        flt = next(c for c in q.where.children if isinstance(c, Filter))
        assert isinstance(flt.expression, FunctionCall)
        assert flt.expression.name == "CONTAINS"

    def test_negation(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o FILTER (!BOUND(?x)) }")
        assert q.where.children


class TestGroupParsing:
    def test_optional(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o OPTIONAL { ?s ?q ?r } }")
        assert any(isinstance(c, OptionalPattern) for c in q.where.children)

    def test_union(self):
        q = parse_query("SELECT ?s WHERE { { ?s ?p 1 } UNION { ?s ?p 2 } }")
        union = next(c for c in q.where.children if isinstance(c, UnionPattern))
        assert len(union.alternatives) == 2

    def test_nested_group(self):
        q = parse_query("SELECT ?s WHERE { { ?s ?p ?o } }")
        assert q.where.children


class TestAskParsing:
    def test_ask(self):
        q = parse_query("ASK { <http://x/a> <http://x/p> <http://x/b> }")
        assert isinstance(q, AskQuery)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT WHERE { ?s ?p ?o }",
            "SELECT ?s { ?s ?p ?o ",
            "SELECT ?s WHERE { ?s ?p }",
            "SELECT ?s WHERE { ?s ?p ?o } trailing",
            "FROB ?s WHERE { ?s ?p ?o }",
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT abc",
            "SELECT ?s WHERE { ?s nope:curie ?o }",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)

    def test_comments_ignored(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o } # trailing comment")
        assert isinstance(q, SelectQuery)
