"""Tests for Turtle anonymous blank nodes and collections."""

import pytest

from repro.errors import ParseError
from repro.rdf import turtle
from repro.rdf.namespaces import RDF
from repro.rdf.terms import BNode, Literal, URIRef


class TestBlankNodePropertyLists:
    def test_object_bnode(self):
        g = turtle.load('@prefix ex: <http://x/> . ex:a ex:knows [ ex:name "Anon" ] .')
        anon_triples = [t for t in g if isinstance(t.subject, BNode)]
        assert len(anon_triples) == 1
        assert anon_triples[0].object == Literal("Anon")
        bridge = next(t for t in g if t.predicate == URIRef("http://x/knows"))
        assert bridge.object == anon_triples[0].subject

    def test_subject_bnode(self):
        g = turtle.load('@prefix ex: <http://x/> . [ ex:label "L" ] ex:points ex:a .')
        assert len(g) == 2
        subjects = {t.subject for t in g}
        assert len(subjects) == 1 and isinstance(next(iter(subjects)), BNode)

    def test_empty_bnode(self):
        g = turtle.load("@prefix ex: <http://x/> . ex:a ex:p [] .")
        assert len(g) == 1
        assert isinstance(next(iter(g)).object, BNode)

    def test_nested_bnodes(self):
        g = turtle.load(
            '@prefix ex: <http://x/> . ex:a ex:p [ ex:q [ ex:r "deep" ] ] .'
        )
        assert len(g) == 3
        deep = next(t for t in g if t.object == Literal("deep"))
        assert isinstance(deep.subject, BNode)

    def test_bnode_with_semicolons(self):
        g = turtle.load(
            '@prefix ex: <http://x/> . ex:a ex:p [ ex:q 1 ; ex:r 2 , 3 ] .'
        )
        assert len(g) == 4

    def test_bnode_as_predicate_rejected(self):
        with pytest.raises(ParseError):
            turtle.load("@prefix ex: <http://x/> . ex:a [ ex:p ex:b ] ex:c .")

    def test_unterminated_bnode(self):
        with pytest.raises(ParseError):
            turtle.load('@prefix ex: <http://x/> . ex:a ex:p [ ex:q "v" .')


class TestCollections:
    def test_three_element_list(self):
        g = turtle.load("@prefix ex: <http://x/> . ex:a ex:list ( ex:one ex:two ex:three ) .")
        assert g.count(predicate=RDF.first) == 3
        assert g.count(predicate=RDF.rest) == 3
        # walk the list
        head = next(t for t in g if t.predicate == URIRef("http://x/list")).object
        items = []
        node = head
        while node != RDF.nil:
            items.append(g.value(node, RDF.first))
            node = g.value(node, RDF.rest)
        assert [str(i) for i in items] == ["http://x/one", "http://x/two", "http://x/three"]

    def test_empty_collection_is_nil(self):
        g = turtle.load("@prefix ex: <http://x/> . ex:a ex:list () .")
        assert next(iter(g)).object == RDF.nil
        assert len(g) == 1

    def test_collection_of_literals(self):
        g = turtle.load('@prefix ex: <http://x/> . ex:a ex:list ( 1 2 "three" ) .')
        firsts = {t.object for t in g.triples(predicate=RDF.first)}
        assert Literal("three") in firsts

    def test_unterminated_collection(self):
        with pytest.raises(ParseError):
            turtle.load("@prefix ex: <http://x/> . ex:a ex:list ( ex:one .")
