"""Unit tests for similarity functions."""

from datetime import date

import pytest

from repro.rdf.terms import Literal, URIRef, XSD_INTEGER
from repro.similarity import (
    best_object_similarity,
    boolean_similarity,
    date_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    literal_similarity,
    numeric_similarity,
    object_similarity,
    string_similarity,
    token_jaccard_similarity,
    trigram_dice_similarity,
    uri_similarity,
    year_similarity,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [("", "", 0), ("abc", "abc", 0), ("abc", "", 3), ("kitten", "sitting", 3),
         ("flaw", "lawn", 2)],
    )
    def test_distance(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    def test_symmetry(self):
        assert levenshtein_distance("abc", "ab") == levenshtein_distance("ab", "abc")

    def test_similarity_range(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
        assert 0.0 < levenshtein_similarity("lebron", "lebrom") < 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_winkler_boosts_prefix(self):
        plain = jaro_similarity("prefixes", "prefixed")
        boosted = jaro_winkler_similarity("prefixes", "prefixed")
        assert boosted > plain

    def test_winkler_known_value(self):
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)


class TestTokenMetrics:
    def test_jaccard_reordering_invariant(self):
        assert token_jaccard_similarity("james lebron", "lebron james") == 1.0

    def test_jaccard_partial(self):
        assert token_jaccard_similarity("lebron james", "lebron raymone") == pytest.approx(1 / 3)

    def test_jaccard_empty(self):
        assert token_jaccard_similarity("", "") == 1.0
        assert token_jaccard_similarity("a", "") == 0.0

    def test_trigram_identical(self):
        assert trigram_dice_similarity("hello", "HELLO") == 1.0

    def test_trigram_disjoint(self):
        assert trigram_dice_similarity("aaa", "zzz") == 0.0


class TestStringSimilarity:
    def test_exact_after_normalization(self):
        assert string_similarity("LeBron  James", "lebron james") == 1.0

    def test_typo_scores_high(self):
        assert string_similarity("LeBron James", "Lebron Jmaes") > 0.85

    def test_reordered_tokens_score_high(self):
        assert string_similarity("James LeBron", "LeBron James") >= 0.99

    def test_unrelated_scores_low(self):
        assert string_similarity("LeBron James", "Miami Heat") < 0.6

    def test_empty(self):
        assert string_similarity("", "") == 1.0
        assert string_similarity("x", "") == 0.0


class TestNumericAndDates:
    def test_numeric_equal(self):
        assert numeric_similarity(5.0, 5.0) == 1.0
        assert numeric_similarity(0.0, 0.0) == 1.0

    def test_numeric_relative(self):
        assert numeric_similarity(100.0, 90.0) == pytest.approx(0.9)

    def test_numeric_nan(self):
        assert numeric_similarity(float("nan"), 1.0) == 0.0

    def test_numeric_clamped(self):
        assert numeric_similarity(1.0, -100.0) == 0.0

    def test_year_close(self):
        assert year_similarity(1984, 1984) == 1.0
        assert year_similarity(1984, 1985) > 0.9
        assert year_similarity(1984, 2014) < 0.1

    def test_date_decay(self):
        d0 = date(2010, 1, 1)
        assert date_similarity(d0, d0) == 1.0
        assert date_similarity(d0, date(2010, 2, 1)) > date_similarity(d0, date(2012, 1, 1))

    def test_boolean(self):
        assert boolean_similarity(True, True) == 1.0
        assert boolean_similarity(True, False) == 0.0


class TestObjectSimilarity:
    def test_typed_literals_numeric(self):
        a = Literal("1984", datatype=XSD_INTEGER)
        b = Literal("1985", datatype=XSD_INTEGER)
        assert literal_similarity(a, b) > 0.9

    def test_mixed_types_fall_back_to_string(self):
        a = Literal("1984", datatype=XSD_INTEGER)
        b = Literal("1984")
        assert literal_similarity(a, b) == 1.0

    def test_uri_exact(self):
        u = URIRef("http://x/LeBron_James")
        assert uri_similarity(u, u) == 1.0

    def test_uri_local_name_humanized(self):
        a = URIRef("http://x/LeBron_James")
        b = URIRef("http://y/lebron-james")
        assert uri_similarity(a, b) > 0.9

    def test_literal_vs_uri(self):
        lit = Literal("LeBron James")
        uri = URIRef("http://x/LeBron_James")
        assert object_similarity(lit, uri) > 0.9
        assert object_similarity(uri, lit) > 0.9

    def test_best_object_similarity_multivalue(self):
        a = (Literal("King James"), Literal("LeBron James"))
        b = (Literal("Lebron James"),)
        assert best_object_similarity(a, b) > 0.9

    def test_best_object_similarity_empty(self):
        assert best_object_similarity((), (Literal("x"),)) == 0.0
