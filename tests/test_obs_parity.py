"""Parity: the observability stack changes nothing about seeded runs.

The off-by-default contract of this repo's telemetry: accounting, the
slowlog, and the reporter are pure listeners. A seeded workload run with
every feature enabled must produce byte-identical results to the same
workload with everything disabled, and the disabled path must create no
telemetry instruments of its own.
"""

import pytest

from repro import obs
from repro.core import AlexConfig, AlexEngine
from repro.features import FeatureSpace
from repro.feedback import FeedbackSession, GroundTruthOracle
from repro.links import Link, LinkSet
from repro.obs import accounting, slowlog
from repro.rdf.entity import Entity
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.sparql.prepared import clear_plan_cache, prepare

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")


def link(i, j):
    return Link(URIRef(f"http://a/res/e{i}"), URIRef(f"http://b/res/e{j}"))


@pytest.fixture()
def space():
    space = FeatureSpace(theta=0.3)
    names = ["Alpha Jones", "Bravo Jones", "Carol Jones", "Delta Jones"]
    for i, left_name in enumerate(names):
        left = Entity(
            URIRef(f"http://a/res/e{i}"), {LEFT_NAME: (Literal(left_name),)}
        )
        for j, right_name in enumerate(names):
            right = Entity(
                URIRef(f"http://b/res/e{j}"), {RIGHT_NAME: (Literal(right_name),)}
            )
            space.add_pair(left, right)
    space.freeze()
    return space


@pytest.fixture()
def graph():
    graph = Graph(name="g")
    for index in range(10):
        graph.add(
            (URIRef(f"http://a/res/e{index}"), LEFT_NAME, Literal(f"name {index}"))
        )
    return graph


def run_workload(space, graph, enabled, tmp_path, tag):
    """One seeded feedback + query workload; returns its observable outputs."""
    clear_plan_cache()
    with obs.use_registry(obs.Registry(tag)) as registry:
        if enabled:
            accounting.enable()
            slowlog.configure(threshold=0.0)
        config_changes = {}
        if enabled:
            config_changes = {
                "report_interval": 0.05,
                "report_path": str(tmp_path / f"{tag}.jsonl"),
            }
        try:
            truth = LinkSet([link(i, i) for i in range(4)])
            engine = AlexEngine(
                space,
                LinkSet([link(0, 0)]),
                AlexConfig(episode_size=5, seed=1, **config_changes),
            )
            session = FeedbackSession(engine, GroundTruthOracle(truth), seed=3)
            session.run(episode_size=5, max_episodes=3)
            rows = prepare(
                "SELECT ?s ?n WHERE { ?s <http://a/ont/name> ?n } LIMIT 6"
            ).execute(graph).as_tuples()
            candidates = engine.candidates.snapshot()
            engine.close()
        finally:
            accounting.disable()
            slowlog.disable()
        return candidates, rows, registry.snapshot()


class TestObservabilityChangesNothing:
    def test_enabled_run_matches_disabled_run(self, space, graph, tmp_path):
        bare = run_workload(space, graph, enabled=False, tmp_path=tmp_path, tag="bare")
        full = run_workload(space, graph, enabled=True, tmp_path=tmp_path, tag="full")
        bare_candidates, bare_rows, bare_snapshot = bare
        full_candidates, full_rows, full_snapshot = full
        # Byte-identical learner and query results.
        assert bare_candidates == full_candidates
        assert bare_rows == full_rows

        def names(snapshot):
            return {
                entry["name"]
                for section in ("counters", "gauges", "histograms")
                for entry in snapshot[section]
            } | {entry["path"] for entry in snapshot["spans"]}

        # The disabled path created no accounting/report/slowlog instruments,
        # and the enabled path created no new aggregate metric names either
        # (stats attach to results; the reporter reads, never writes).
        assert names(bare_snapshot) == names(full_snapshot)

    def test_disabled_run_repeats_identically(self, space, graph, tmp_path):
        first = run_workload(space, graph, enabled=False, tmp_path=tmp_path, tag="a")
        second = run_workload(space, graph, enabled=False, tmp_path=tmp_path, tag="b")
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_accounting_flag_restored_after_disable(self):
        accounting.enable()
        accounting.disable()
        assert not accounting.enabled()
        assert slowlog.active() is None
