"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken example is a broken
promise. Each runs in a subprocess with a temp working directory so file
outputs don't pollute the repository.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))


def run_example(name: str, tmp_path, *args: str) -> subprocess.CompletedProcess:
    script = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    # The subprocess doesn't inherit pytest's sys.path; make `import repro`
    # resolve to this checkout regardless of how the tests were launched.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, script, *args],
        cwd=str(tmp_path),
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


@pytest.mark.parametrize(
    "script,expected",
    [
        ("quickstart.py", "final:"),
        ("federated_feedback.py", "answers after feedback: 2"),
        ("nba_domain.py", "greedy feature choices"),
        ("batch_linking_pipeline.py", "owl:sameAs triples"),
        ("operations.py", "policy report"),
        ("custom_linker.py", "after"),
    ],
)
def test_example_runs(script, expected, tmp_path):
    result = run_example(script, tmp_path)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


def test_batch_pipeline_writes_links_file(tmp_path):
    result = run_example("batch_linking_pipeline.py", tmp_path, "out.nt")
    assert result.returncode == 0, result.stderr[-2000:]
    out_file = tmp_path / "out.nt"
    assert out_file.exists()
    assert "sameAs" in out_file.read_text()
