"""Property-based tests for core invariants: link sets, policy
distributions, metrics, and the feature space range index."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ActionValueTable, EpsilonGreedyPolicy, StateAction
from repro.evaluation import evaluate_links
from repro.features import FeatureSpace
from repro.links import Link, LinkSet, change_fraction
from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef

link_indices = st.tuples(st.integers(0, 15), st.integers(0, 15))


def make_link(pair: tuple[int, int]) -> Link:
    return Link(URIRef(f"http://a/e{pair[0]}"), URIRef(f"http://b/e{pair[1]}"))


links = st.builds(make_link, link_indices)
link_lists = st.lists(links, max_size=30)


class TestLinkSetProperties:
    @given(link_lists)
    def test_size_matches_distinct(self, items):
        assert len(LinkSet(items)) == len(set(items))

    @given(link_lists)
    def test_indexes_consistent(self, items):
        linkset = LinkSet(items)
        for item in linkset:
            assert item.right in linkset.by_left(item.left)
            assert item.left in linkset.by_right(item.right)

    @given(link_lists)
    def test_add_remove_inverse(self, items):
        linkset = LinkSet(items)
        for item in set(items):
            assert linkset.remove(item)
        assert len(linkset) == 0
        assert not linkset._by_left and not linkset._by_right

    @given(link_lists, link_lists)
    def test_change_fraction_zero_iff_equal(self, a, b):
        before, after = frozenset(a), frozenset(b)
        fraction = change_fraction(before, after)
        assert fraction >= 0.0
        assert (fraction == 0.0) == (before == after)


class TestMetricsProperties:
    @given(link_lists, link_lists)
    def test_quality_bounds(self, candidates, truth):
        quality = evaluate_links(candidates, truth)
        assert 0.0 <= quality.precision <= 1.0
        assert 0.0 <= quality.recall <= 1.0
        assert 0.0 <= quality.f_measure <= 1.0
        lower = min(quality.precision, quality.recall) - 1e-9
        upper = max(quality.precision, quality.recall) + 1e-9
        assert lower <= quality.f_measure <= upper or quality.f_measure == 0.0

    @given(link_lists)
    def test_perfect_candidates(self, truth):
        if not truth:
            return
        quality = evaluate_links(truth, truth)
        assert quality.precision == quality.recall == 1.0


FEATURE_KEYS = [
    (URIRef(f"http://a/ont/p{i}"), URIRef(f"http://b/ont/q{i}")) for i in range(4)
]


class TestPolicyProperties:
    @given(
        st.integers(0, 3),
        st.floats(min_value=0.01, max_value=0.99),
        st.lists(st.sampled_from(FEATURE_KEYS), min_size=1, max_size=4, unique=True),
    )
    def test_probabilities_sum_to_one(self, greedy_index, epsilon, actions):
        policy = EpsilonGreedyPolicy(epsilon)
        state = make_link((0, 0))
        policy.improve(state, FEATURE_KEYS[greedy_index])
        probabilities = policy.action_probabilities(state, actions)
        assert abs(sum(probabilities.values()) - 1.0) < 1e-9
        assert all(p > 0.0 for p in probabilities.values())

    @given(st.lists(st.floats(-1, 1), min_size=1, max_size=30))
    def test_q_is_mean_of_returns(self, rewards):
        table = ActionValueTable()
        sa = StateAction(make_link((0, 0)), FEATURE_KEYS[0])
        for reward in rewards:
            table.record_return(sa, reward)
        assert abs(table.q(sa) - sum(rewards) / len(rewards)) < 1e-9


class TestFeatureSpaceProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.floats(0.3, 1.0)),
            min_size=1,
            max_size=20,
            unique_by=lambda pair: pair[0],
        ),
        st.floats(0.0, 1.0),
        st.floats(0.01, 0.3),
    )
    @settings(max_examples=60)
    def test_explore_returns_exactly_the_range(self, scored_entities, center, step):
        """The range index answer must equal a brute-force scan."""
        left_pred = URIRef("http://a/ont/name")
        right_pred = URIRef("http://b/ont/name")
        space = FeatureSpace(theta=0.0)
        # Build pairs with controlled feature scores via identical/different
        # literals is hard; instead drive add via internal structures the
        # public way: one left entity per score, right fixed.
        expected = set()
        for index, score in scored_entities:
            link_obj = Link(URIRef(f"http://a/res/e{index}"), URIRef("http://b/res/fixed"))
            from repro.features.feature_set import FeatureSet

            space._feature_sets[link_obj] = FeatureSet({(left_pred, right_pred): score})
            space._index.setdefault((left_pred, right_pred), []).append((score, link_obj))
            if center - step <= score <= center + step:
                expected.add(link_obj)
        space.freeze()
        hits = set(space.explore((left_pred, right_pred), center, step))
        assert hits == expected
