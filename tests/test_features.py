"""Unit tests for feature sets, the feature space, blocking, and partitioning."""

import pytest

from repro.errors import FeatureSpaceError
from repro.features import (
    FeatureSet,
    FeatureSpace,
    TokenBlocker,
    blocked_pairs,
    build_feature_set,
    build_partitioned_spaces,
    entity_tokens,
    equal_size_partition,
    merge_spaces,
    similarity_matrix,
)
from repro.links import Link
from repro.rdf import turtle
from repro.rdf.entity import Entity, entities_of
from repro.rdf.terms import URIRef


def ont(side: str, name: str) -> URIRef:
    return URIRef(f"http://{side}/ont/{name}")


@pytest.fixture()
def left_graph():
    return turtle.load(
        """
        @prefix r: <http://a/res/> .
        @prefix o: <http://a/ont/> .
        r:lebron o:label "LeBron James" ; o:birth 1984 ; o:team "Miami Heat" .
        r:durant o:label "Kevin Durant" ; o:birth 1988 .
        r:noise  o:label "Zqx Wvu" .
        """
    )


@pytest.fixture()
def right_graph():
    return turtle.load(
        """
        @prefix r: <http://b/res/> .
        @prefix o: <http://b/ont/> .
        r:james o:name "Lebron James" ; o:born 1984 .
        r:kd    o:name "K. Durant" ; o:born 1988 .
        """
    )


def entity_of(graph, uri):
    return Entity.from_graph(graph, URIRef(uri))


class TestFeatureSet:
    def test_matrix_thresholded(self, left_graph, right_graph):
        lebron = entity_of(left_graph, "http://a/res/lebron")
        james = entity_of(right_graph, "http://b/res/james")
        matrix = similarity_matrix(lebron, james, theta=0.3)
        assert matrix[(ont("a", "label"), ont("b", "name"))] == 1.0
        assert matrix[(ont("a", "birth"), ont("b", "born"))] == 1.0
        assert all(score >= 0.3 for score in matrix.values())

    def test_max_per_row_when_left_bigger(self, left_graph, right_graph):
        lebron = entity_of(left_graph, "http://a/res/lebron")  # 3 attrs
        james = entity_of(right_graph, "http://b/res/james")  # 2 attrs
        fs = build_feature_set(lebron, james)
        # one entry per left predicate that matched anything
        left_preds = {key[0] for key in fs}
        assert len(left_preds) == len(fs)

    def test_max_per_column_when_right_bigger(self, left_graph, right_graph):
        durant = entity_of(left_graph, "http://a/res/durant")  # 2 attrs
        james = entity_of(right_graph, "http://b/res/james")  # 2 attrs (tie -> column rule)
        fs = build_feature_set(durant, james)
        right_preds = {key[1] for key in fs}
        assert len(right_preds) == len(fs)

    def test_empty_pair_returns_none(self, left_graph, right_graph):
        noise = entity_of(left_graph, "http://a/res/noise")
        kd = entity_of(right_graph, "http://b/res/kd")
        assert build_feature_set(noise, kd, theta=0.9) is None

    def test_best_feature_deterministic(self, left_graph, right_graph):
        lebron = entity_of(left_graph, "http://a/res/lebron")
        james = entity_of(right_graph, "http://b/res/james")
        fs = build_feature_set(lebron, james)
        assert fs.best_feature() == fs.best_feature()

    def test_score_out_of_range_rejected(self):
        with pytest.raises(FeatureSpaceError):
            FeatureSet({(ont("a", "x"), ont("b", "y")): 1.5})

    def test_hash_and_equality(self, left_graph, right_graph):
        lebron = entity_of(left_graph, "http://a/res/lebron")
        james = entity_of(right_graph, "http://b/res/james")
        fs1 = build_feature_set(lebron, james)
        fs2 = build_feature_set(lebron, james)
        assert fs1 == fs2 and hash(fs1) == hash(fs2)


class TestBlocking:
    def test_entity_tokens_include_literals_and_uri(self, left_graph):
        lebron = entity_of(left_graph, "http://a/res/lebron")
        tokens = entity_tokens(lebron)
        assert "lebron" in tokens and "james" in tokens and "1984" in tokens

    def test_blocked_pairs_share_tokens(self, left_graph, right_graph):
        pairs = list(blocked_pairs(entities_of(left_graph), entities_of(right_graph)))
        pair_names = {(l.uri.local_name, r.uri.local_name) for l, r in pairs}
        assert ("lebron", "james") in pair_names
        assert ("noise", "james") not in pair_names

    def test_stop_tokens_dropped(self):
        graph = turtle.load(
            "@prefix o: <http://x/ont/> .\n"
            + "\n".join(
                f'<http://x/res/e{i}> o:tag "common" ; o:name "unique{i}" .'
                for i in range(20)
            )
        )
        blocker = TokenBlocker(entities_of(graph), stop_fraction=0.2)
        probe = next(iter(entities_of(graph)))
        # 'common' is shared by all 20 entities -> must not pair everything
        assert len(blocker.candidates(probe)) < 20


class TestFeatureSpace:
    @pytest.fixture()
    def space(self, left_graph, right_graph):
        return FeatureSpace.build(left_graph, right_graph)

    def test_contains_correct_pairs(self, space):
        assert Link(URIRef("http://a/res/lebron"), URIRef("http://b/res/james")) in space
        assert Link(URIRef("http://a/res/durant"), URIRef("http://b/res/kd")) in space

    def test_feature_set_lookup(self, space):
        link = Link(URIRef("http://a/res/lebron"), URIRef("http://b/res/james"))
        fs = space.feature_set(link)
        assert fs is not None and fs[(ont("a", "label"), ont("b", "name"))] == 1.0

    def test_explore_range_query(self, space):
        key = (ont("a", "label"), ont("b", "name"))
        hits = space.explore(key, center=1.0, step=0.05)
        assert Link(URIRef("http://a/res/lebron"), URIRef("http://b/res/james")) in hits
        assert all(abs(space.feature_set(l)[key] - 1.0) <= 0.05 for l in hits)

    def test_explore_unknown_key(self, space):
        assert space.explore((ont("a", "zz"), ont("b", "zz")), 0.5, 0.1) == []

    def test_explore_requires_freeze(self, left_graph, right_graph):
        space = FeatureSpace()
        with pytest.raises(FeatureSpaceError):
            space.explore((ont("a", "label"), ont("b", "name")), 0.5, 0.1)

    def test_frozen_space_rejects_adds(self, space, left_graph):
        entity = entity_of(left_graph, "http://a/res/lebron")
        with pytest.raises(FeatureSpaceError):
            space.add_pair(entity, entity)

    def test_total_pairs_considered(self, space):
        assert space.total_pairs_considered == 3 * 2

    def test_invalid_theta(self):
        with pytest.raises(FeatureSpaceError):
            FeatureSpace(theta=1.5)

    def test_no_blocking_superset(self, left_graph, right_graph):
        blocked = FeatureSpace.build(left_graph, right_graph, use_blocking=True)
        naive = FeatureSpace.build(left_graph, right_graph, use_blocking=False)
        assert set(blocked.links()) <= set(naive.links())


class TestPartitioning:
    def test_round_robin_deterministic(self, left_graph):
        entities = list(entities_of(left_graph))
        parts1 = equal_size_partition(entities, 2)
        parts2 = equal_size_partition(list(reversed(entities)), 2)
        assert [[e.uri for e in p] for p in parts1] == [[e.uri for e in p] for p in parts2]

    def test_partition_sizes_balanced(self, left_graph):
        entities = list(entities_of(left_graph))
        parts = equal_size_partition(entities, 2)
        assert abs(len(parts[0]) - len(parts[1])) <= 1

    def test_invalid_partition_count(self, left_graph):
        with pytest.raises(FeatureSpaceError):
            equal_size_partition(list(entities_of(left_graph)), 0)

    def test_partitioned_spaces_cover_all_links(self, left_graph, right_graph):
        whole = FeatureSpace.build(left_graph, right_graph)
        parts = build_partitioned_spaces(left_graph, right_graph, 2)
        covered = {link for space in parts for link in space.links()}
        assert covered == set(whole.links())

    def test_partitions_disjoint(self, left_graph, right_graph):
        parts = build_partitioned_spaces(left_graph, right_graph, 2)
        seen = set()
        for space in parts:
            links = set(space.links())
            assert not (links & seen)
            seen |= links

    def test_merge_spaces(self, left_graph, right_graph):
        parts = build_partitioned_spaces(left_graph, right_graph, 2)
        merged = merge_spaces(parts)
        whole = FeatureSpace.build(left_graph, right_graph)
        assert set(merged.links()) == set(whole.links())

    def test_merge_requires_same_theta(self, left_graph, right_graph):
        a = FeatureSpace.build(left_graph, right_graph, theta=0.3)
        b = FeatureSpace.build(left_graph, right_graph, theta=0.4)
        with pytest.raises(FeatureSpaceError):
            merge_spaces([a, b])
