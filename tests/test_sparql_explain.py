"""Tests for SPARQL EXPLAIN / EXPLAIN ANALYZE (repro.sparql.explain)."""

import json

import pytest

from repro import obs
from repro.obs import trace
from repro.rdf import turtle
from repro.rdf.terms import Literal
from repro.sparql import PLAN_SCHEMA, QueryPlan, Var, explain, query


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://x/> .
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .
        ex:lebron a foaf:Person ; foaf:name "LeBron James" ;
                  ex:birthYear 1984 ; ex:team ex:heat .
        ex:durant a foaf:Person ; foaf:name "Kevin Durant" ; ex:birthYear 1988 .
        ex:curry a foaf:Person ; foaf:name "Stephen Curry" ; ex:birthYear 1988 .
        ex:heat foaf:name "Miami Heat" .
        """
    )


PREFIXES = "PREFIX ex: <http://x/> PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
SELECT = (
    PREFIXES
    + "SELECT ?name WHERE { ?p a foaf:Person ; foaf:name ?name ; ex:birthYear ?y "
    + "FILTER (?y >= 1988) } ORDER BY ?name LIMIT 2"
)


class TestStaticExplain:
    def test_plan_tree_shape(self, graph):
        plan = explain(graph, SELECT)
        assert isinstance(plan, QueryPlan)
        assert not plan.analyzed
        assert plan.result is None
        ops = [node.op for node in plan.operators()]
        # modifiers stack on top, patterns at the bottom
        assert ops[0] == "slice"
        assert "order" in ops and "project" in ops
        assert ops.count("pattern") == 3
        assert "filter" in ops

    def test_patterns_carry_estimates_and_strategy(self, graph):
        plan = explain(graph, SELECT)
        patterns = [node for node in plan.operators() if node.op == "pattern"]
        assert all(node.estimate is not None and node.estimate >= 1.0 for node in patterns)
        assert all(node.strategy == "index-nested-loop" for node in patterns)
        assert all(not node.executed for node in patterns)

    def test_render_tree_connectors(self, graph):
        text = explain(graph, SELECT).render()
        assert text.startswith("EXPLAIN\n")
        assert "`- " in text
        assert "est=" in text
        assert "total:" not in text  # static plans report no timing

    def test_path_pattern_strategy(self, graph):
        plan = explain(graph, PREFIXES + "SELECT ?n WHERE { ?p ex:team/foaf:name ?n }")
        (pattern,) = [node for node in plan.operators() if node.op == "pattern"]
        assert pattern.strategy == "path-scan"

    def test_static_explain_never_executes(self, graph):
        before = len(graph)
        explain(graph, PREFIXES + "SELECT ?s WHERE { ?s ?p ?o }")
        assert len(graph) == before


class TestExplainAnalyze:
    def test_rows_and_timings_filled(self, graph):
        plan = explain(graph, SELECT, analyze=True)
        assert plan.analyzed
        assert plan.seconds is not None and plan.seconds >= 0.0
        patterns = [node for node in plan.operators() if node.op == "pattern"]
        assert all(node.executed for node in patterns)
        assert sum(node.rows_out for node in patterns) > 0
        filters = [node for node in plan.operators() if node.op == "filter"]
        assert filters and filters[0].executed
        assert filters[0].rows_in >= filters[0].rows_out

    def test_result_matches_plain_query(self, graph):
        plan = explain(graph, SELECT, analyze=True)
        plain = query(graph, SELECT)
        assert [dict(row) for row in plan.result] == [dict(row) for row in plain]

    def test_render_includes_rows_and_total(self, graph):
        text = explain(graph, SELECT, analyze=True).render()
        assert text.startswith("EXPLAIN ANALYZE\n")
        assert "rows=" in text and "time=" in text
        assert "total:" in text

    def test_modifier_rows_flow(self, graph):
        plan = explain(graph, SELECT, analyze=True)
        by_op = {node.op: node for node in plan.operators()}
        assert by_op["project"].executed
        # LIMIT 2 truncates: slice emits no more rows than it received
        assert by_op["slice"].rows_out <= by_op["slice"].rows_in
        assert by_op["slice"].rows_out == len(plan.result)

    def test_ask_and_construct(self, graph):
        ask = explain(graph, PREFIXES + "ASK { ex:lebron a foaf:Person }", analyze=True)
        assert ask.result is True
        assert ask.root.op == "ask"
        construct = explain(
            graph,
            PREFIXES + "CONSTRUCT { ?p ex:called ?n } WHERE { ?p foaf:name ?n }",
            analyze=True,
        )
        assert construct.root.op == "construct"
        assert len(construct.result) == 4

    def test_aggregate_plan(self, graph):
        plan = explain(
            graph,
            PREFIXES + "SELECT ?y (COUNT(?p) AS ?n) WHERE { ?p ex:birthYear ?y } GROUP BY ?y",
            analyze=True,
        )
        by_op = {node.op: node for node in plan.operators()}
        assert "aggregate" in by_op and by_op["aggregate"].executed
        assert sorted(int(str(row[Var("n")])) for row in plan.result) == [1, 2]


class TestToDict:
    def test_schema_and_json_round_trip(self, graph):
        plan = explain(graph, SELECT, analyze=True)
        payload = plan.to_dict()
        assert payload["schema"] == PLAN_SCHEMA
        assert payload["analyzed"] is True
        assert "seconds" in payload
        assert json.loads(json.dumps(payload)) == payload
        root = payload["root"]
        assert root["op"] == "slice"
        assert "children" in root

    def test_static_dict_omits_runtime_fields(self, graph):
        payload = explain(graph, SELECT).to_dict()
        assert payload["analyzed"] is False
        assert "seconds" not in payload
        assert "rows_in" not in payload["root"]


class TestProfileKeyword:
    def test_query_profile_returns_result_and_plan(self, graph):
        result, plan = query(graph, SELECT, profile=True)
        assert isinstance(plan, QueryPlan)
        assert plan.analyzed
        assert [dict(row) for row in result] == [dict(row) for row in query(graph, SELECT)]

    def test_query_without_profile_unchanged(self, graph):
        result = query(graph, SELECT)
        assert not isinstance(result, tuple)


class TestTraceIntegration:
    def test_operator_events_emitted_under_explain_span(self, graph):
        with obs.use_registry(obs.Registry("t")):
            tracer = trace.install(seed=0)
            plan = explain(graph, SELECT, analyze=True)
            records = tracer.records()
        spans = [r for r in records if r["kind"] == "span"]
        assert [s["name"] for s in spans] == ["sparql.query.explain"]
        assert plan.trace_id == spans[0]["trace"]
        events = [r for r in records if r["name"] == "sparql.operator.eval"]
        executed = [n for n in plan.operators() if n.executed]
        assert len(events) == len(executed)
        assert all(e["trace"] == plan.trace_id for e in events)
        pattern_events = [e for e in events if e["attrs"]["op"] == "pattern"]
        assert all(e["attrs"]["strategy"] == "index-nested-loop" for e in pattern_events)
        assert all("rows_out" in e["attrs"] for e in events)

    def test_no_tracer_leaves_trace_id_none(self, graph):
        with obs.use_registry(obs.Registry("t")):
            plan = explain(graph, SELECT, analyze=True)
        assert plan.trace_id is None
        assert "trace:" not in plan.render()

    def test_analyze_result_identical_with_and_without_tracer(self, graph):
        with obs.use_registry(obs.Registry("t")):
            bare = explain(graph, SELECT, analyze=True)
        with obs.use_registry(obs.Registry("t")):
            trace.install(seed=0)
            traced = explain(graph, SELECT, analyze=True)
        assert [dict(r) for r in bare.result] == [dict(r) for r in traced.result]
        assert [n.rows_out for n in bare.operators()] == [
            n.rows_out for n in traced.operators()
        ]


class TestErrors:
    def test_unexplainable_query_type_rejected(self, graph):
        with pytest.raises(TypeError):
            explain(graph, 42)
