"""Unit tests for feedback oracles and sessions."""

import pytest

from repro.core import AlexConfig, AlexEngine
from repro.errors import ConfigError
from repro.evaluation import QualityTracker
from repro.features import FeatureSpace
from repro.feedback import FeedbackSession, GroundTruthOracle, NoisyOracle
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")


def link(i: int, j: int) -> Link:
    return Link(URIRef(f"http://a/res/e{i}"), URIRef(f"http://b/res/e{j}"))


@pytest.fixture()
def space() -> FeatureSpace:
    space = FeatureSpace(theta=0.3)
    for i in range(4):
        left = Entity(URIRef(f"http://a/res/e{i}"), {LEFT_NAME: (Literal(f"Name{i} Jones"),)})
        for j in range(4):
            right = Entity(
                URIRef(f"http://b/res/e{j}"), {RIGHT_NAME: (Literal(f"Name{j} Jones"),)}
            )
            space.add_pair(left, right)
    space.freeze()
    return space


@pytest.fixture()
def ground_truth() -> LinkSet:
    return LinkSet([link(i, i) for i in range(4)])


class TestOracles:
    def test_ground_truth_oracle(self, ground_truth):
        oracle = GroundTruthOracle(ground_truth)
        assert oracle.judge(link(0, 0)) is True
        assert oracle.judge(link(0, 1)) is False

    def test_noisy_oracle_flips_at_rate(self, ground_truth):
        oracle = NoisyOracle(GroundTruthOracle(ground_truth), error_rate=0.3, seed=0)
        verdicts = [oracle.judge(link(0, 0)) for _ in range(2000)]
        flip_rate = verdicts.count(False) / len(verdicts)
        assert 0.25 < flip_rate < 0.35

    def test_noisy_oracle_zero_error(self, ground_truth):
        oracle = NoisyOracle(GroundTruthOracle(ground_truth), error_rate=0.0)
        assert all(oracle.judge(link(1, 1)) for _ in range(50))

    def test_invalid_error_rate(self, ground_truth):
        with pytest.raises(ConfigError):
            NoisyOracle(GroundTruthOracle(ground_truth), error_rate=1.0)

    def test_noisy_oracle_deterministic_by_seed(self, ground_truth):
        a = NoisyOracle(GroundTruthOracle(ground_truth), error_rate=0.5, seed=9)
        b = NoisyOracle(GroundTruthOracle(ground_truth), error_rate=0.5, seed=9)
        assert [a.judge(link(0, 0)) for _ in range(20)] == [
            b.judge(link(0, 0)) for _ in range(20)
        ]


class TestFeedbackSession:
    def test_session_improves_links(self, space, ground_truth):
        engine = AlexEngine(space, LinkSet([link(0, 0), link(0, 1)]), AlexConfig(episode_size=20, seed=2))
        tracker = QualityTracker(ground_truth)
        tracker.record_initial(engine.candidates)
        session = FeedbackSession(
            engine, GroundTruthOracle(ground_truth), seed=2,
            on_episode_end=tracker.on_episode_end,
        )
        session.run(episode_size=20, max_episodes=10)
        assert tracker.final.f_measure > tracker.records[0].f_measure
        assert tracker.final.quality.recall == 1.0

    def test_episode_size_validated(self, space, ground_truth):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), AlexConfig(episode_size=5))
        session = FeedbackSession(engine, GroundTruthOracle(ground_truth))
        with pytest.raises(ConfigError):
            session.run_episode(0)

    def test_total_feedback_counted(self, space, ground_truth):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), AlexConfig(episode_size=5, seed=1))
        session = FeedbackSession(engine, GroundTruthOracle(ground_truth), seed=1)
        session.run_episode(5)
        assert session.total_feedback == 5

    def test_empty_candidates_end_quietly(self, space, ground_truth):
        engine = AlexEngine(space, LinkSet(), AlexConfig(episode_size=5))
        session = FeedbackSession(engine, GroundTruthOracle(ground_truth))
        stats = session.run_episode(5)
        assert stats.feedback_count == 0

    def test_deterministic_given_seeds(self, space, ground_truth):
        def run():
            engine = AlexEngine(
                space, LinkSet([link(0, 0), link(1, 2)]), AlexConfig(episode_size=15, seed=4)
            )
            session = FeedbackSession(engine, GroundTruthOracle(ground_truth), seed=4)
            session.run(episode_size=15, max_episodes=8)
            return engine.candidates.snapshot()

        assert run() == run()

    def test_callback_invoked_per_episode(self, space, ground_truth):
        engine = AlexEngine(space, LinkSet([link(0, 0)]), AlexConfig(episode_size=5, seed=1))
        calls = []
        session = FeedbackSession(
            engine, GroundTruthOracle(ground_truth), seed=1,
            on_episode_end=lambda stats, candidates: calls.append(stats.index),
        )
        session.run_episode(5)
        session.run_episode(5)
        assert calls == [1, 2]
