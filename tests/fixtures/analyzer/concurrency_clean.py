"""Compliant twins for every concurrency rule in ``concurrency_bad.py``:
the same shapes spelled correctly, proving each ALEX-C04x/C05x check stays
silent on disciplined code (including lock-held private helpers, which the
call-graph propagation must recognise)."""

import threading

_SAFE_REGISTRY_LOCK = threading.Lock()
_safe_registry = {}


def register_safely(name, value):
    with _SAFE_REGISTRY_LOCK:
        _safe_registry[name] = value


def peek_safely(name):
    with _SAFE_REGISTRY_LOCK:
        return _safe_registry.get(name)


class SafeMeter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._samples = []

    def add(self, value):
        with self._lock:
            self._note_locked(value)

    def _note_locked(self, value):
        # Only ever called with self._lock held (see add): the analyzer's
        # call-graph propagation must keep these writes silent.
        self._count += 1
        self._samples.append(value)

    def count(self):
        with self._lock:
            return self._count

    def reset(self):
        with self._lock:
            self._count = 0

    def samples(self):
        with self._lock:
            return list(self._samples)


class SafeLedger:
    def __init__(self):
        self._accounts_lock = threading.Lock()
        self._audit_lock = threading.Lock()
        self._balance = 0
        self._entries = []

    def credit(self, amount):
        with self._accounts_lock:
            self._balance += amount
            with self._audit_lock:
                self._entries.append(amount)

    def audit_total(self):
        # Same accounts-before-audit order as credit: acyclic lock graph.
        with self._accounts_lock:
            with self._audit_lock:
                return self._balance + len(self._entries)


def drain_safely(lock, items):
    lock.acquire()
    try:
        out = list(items)
        items.clear()
        return out
    finally:
        lock.release()


async def poll_status_safely(path, read_async):
    return await read_async(path)


def transfer_safely(source_lock, dest_lock, amount, sink):
    with source_lock:
        with dest_lock:
            sink.append(amount)


class SafeJournal:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = []

    def append(self, entry):
        with self._lock:
            self._entries.append(entry)

    def entries(self):
        with self._lock:
            return tuple(self._entries)
