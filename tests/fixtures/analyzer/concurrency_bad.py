"""Deliberate concurrency-contract violations: one per ALEX-C04x/C05x rule.

Line/column positions are pinned in tests/test_repro_analyzer_fixtures.py —
keep edits append-only or re-pin the expectations.
"""

import threading
import time

_REGISTRY_LOCK = threading.Lock()
_registry = {}


def register(name, value):
    with _REGISTRY_LOCK:
        _registry[name] = value


def peek(name):
    # ALEX-C040: module-global guarded by _REGISTRY_LOCK, read lock-free.
    return _registry.get(name)


class Meter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._samples = []

    def add(self, value):
        with self._lock:
            self._count += 1
            self._samples.append(value)

    def read_fast(self):
        # ALEX-C040: guarded attribute read outside the lock.
        return self._count

    def reset_fast(self):
        # ALEX-C040: guarded attribute written outside the lock.
        self._count = 0

    def samples_view(self):
        with self._lock:
            # ALEX-C044: hands out the guarded list itself, not a copy.
            return self._samples

    def flush(self):
        with self._lock:
            # ALEX-C042: sleeps while holding the lock.
            time.sleep(0.01)
            self._samples.clear()


class Ledger:
    def __init__(self):
        self._accounts_lock = threading.Lock()
        self._audit_lock = threading.Lock()
        self._balance = 0
        self._entries = []

    def credit(self, amount):
        with self._accounts_lock:
            self._balance += amount
            # ALEX-C041: accounts -> audit here, audit -> accounts below.
            with self._audit_lock:
                self._entries.append(amount)

    def audit_total(self):
        with self._audit_lock:
            with self._accounts_lock:
                return self._balance + len(self._entries)


def drain(lock, items):
    # ALEX-C043: manual acquire with no try/finally release.
    lock.acquire()
    out = list(items)
    items.clear()
    lock.release()
    return out


async def poll_status(path):
    # ALEX-C042: synchronous blocking I/O inside an async function.
    return open(path).read()


def transfer(source_lock, dest_lock, amount, sink):
    with source_lock:
        # ALEX-C042: blocking acquire of a second lock while holding one.
        dest_lock.acquire()
        try:
            sink.append(amount)
        finally:
            dest_lock.release()


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = []

    def append(self, entry):
        with self._lock:
            self._entries.append(entry)

    def append_fast(self, entry):
        # ALEX-C050: designated writer mutating without the owning lock.
        self._entries.append(entry)
