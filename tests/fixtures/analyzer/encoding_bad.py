"""C1 violations: one each of ALEX-C001, ALEX-C002, ALEX-C003.

This module is NOT in the fixture config's encode/decode boundary, so the
dictionary calls below are contract violations.
"""


def URIRef(value):
    return ("uri", value)


def term_into_id_api(graph):
    # ALEX-C001: a term constructor result flows into the ID-keyed API.
    return list(graph.triples_ids(URIRef("http://example.org/s"), None, None))


def encode_on_read_path(dictionary, term):
    # ALEX-C002: encode interns — this grows the dictionary on a read.
    return dictionary.encode(term)


def decode_mid_pipeline(dictionary, term_id):
    # ALEX-C003: decode away from the sanctioned boundary module.
    return dictionary.decode(term_id)
