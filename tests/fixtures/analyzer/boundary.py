"""The fixture config's sanctioned encoding/decoding boundary module:
identical dictionary calls to encoding_bad.py, legal here."""


def encode_at_boundary(dictionary, term):
    return dictionary.encode(term)


def decode_at_boundary(dictionary, term_id):
    return dictionary.decode(term_id)
