"""The fixture config's shared-state owner module: ``_index`` belongs
here, and ``Store``'s designated writers are ``__init__``/``add``.

``rebuild`` mutates instance state without being designated — the ALEX-C020
writer-inventory violation lives in the owner module itself.
"""


class Store:
    def __init__(self):
        self._index = {}
        self.size = 0

    def add(self, key, value):
        self._index[key] = value
        self.size += 1

    def get(self, key):
        return self._index.get(key)

    def rebuild(self, pairs):
        # ALEX-C020 (writer inventory): mutates _index/size but is not in
        # the designated writer set of the fixture config.
        self._index = dict(pairs)
        self.size = len(self._index)
