"""C1 clean twin: the compliant spellings of encoding_bad.py."""


def id_into_id_api(graph, subject_id):
    # IDs (ints) into the ID-keyed API: fine.
    return list(graph.triples_ids(subject_id, None, None))


def lookup_on_read_path(dictionary, term):
    # lookup never interns — the sanctioned read-path probe.
    return dictionary.lookup(term)


def stay_in_id_space(rows):
    # no decode at all: the pipeline stays in ID space.
    return [row[0] for row in rows]
