"""C3 clean twin: designated writer API + snapshot before mutating."""


def add_through_writer(store, key, value):
    # route the write through the owner's designated writer.
    store.add(key, value)


def drop_expired(index, is_expired):
    # snapshot with list() first: safe to mutate during the walk.
    for key in list(index):
        if is_expired(key):
            index.pop(key)
