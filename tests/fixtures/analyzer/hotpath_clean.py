"""C4 clean twin: ID-space kernel, guarded instrumentation, post-loop
emission — the sanctioned spellings of hotpath_bad.py."""


def join_kernel(left_rows, right_index, codec, obs, tracer=None):
    out = []
    scanned = 0
    for row in left_rows:
        scanned += 1
        if tracer is not None:
            # guarded: off-by-default instrumentation may pay per-row cost.
            tracer.event("join.row.scanned", row=row[0])
        for match in right_index.get(row[0], ()):
            out.append((row, match))
    # decode once at the boundary, emit once after the loop.
    terms = [codec.decode(row[0]) for row, _ in out]
    obs.inc("join.rows.scanned", scanned)
    return out, terms
