"""Deliberate-violation fixtures for the repro_analyzer contract passes.

Each ``*_bad.py`` module contains exactly one violation per ALEX-C rule it
exercises (anchored at known line/column positions the tests pin) and each
``*_clean.py`` twin shows the compliant spelling of the same code. The
test module points the analyzer at this package with an
:class:`repro_analyzer.AnalyzerConfig` whose boundaries/owners name these
files, so the fixtures never depend on the real repro package.
"""
