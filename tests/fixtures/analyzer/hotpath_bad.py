"""C4 violations: one each of ALEX-C030, ALEX-C031, ALEX-C032 inside the
fixture config's hot function ``join_kernel``."""


def join_kernel(left_rows, right_index, codec, obs):
    out = []
    for row in left_rows:
        # ALEX-C030: per-row term materialisation inside the scan loop.
        term = codec.decode(row[0])
        # ALEX-C031: per-row metric emission inside the scan loop.
        obs.inc("join.rows.scanned")
        for match in right_index.get(row[0], ()):
            # ALEX-C032: per-output-row allocation at loop depth 2.
            out.append(dict(base=row, match=match, term=term))
    return out
