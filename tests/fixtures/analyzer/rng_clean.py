"""C2 clean twin: instance RNG seeded once in the constructor."""

import random


class Component:
    def __init__(self, seed):
        # constructing (not drawing from) the global module is sanctioned
        # — random.Random(seed) builds an independent stream.
        self.rng = random.Random(seed)

    def pick(self, items):
        return self.rng.choice(items)
