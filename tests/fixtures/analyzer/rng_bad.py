"""C2 violations: one each of ALEX-C010, ALEX-C011, ALEX-C012."""

import random


def pick_global(items):
    # ALEX-C010: module-level random.* draws from the interpreter-global
    # stream — any import can advance it and break seeded parity.
    return random.choice(items)


def leak_tracer_stream(tracer):
    # ALEX-C011: the tracer RNG is private to the obs package.
    return tracer._rng.random()


class Component:
    def __init__(self, seed):
        self.rng = random.Random(seed)

    def reseed(self, seed):
        # ALEX-C012: re-seeding outside a sanctioned constructor restarts
        # the stream mid-run.
        self.rng.seed(seed)
