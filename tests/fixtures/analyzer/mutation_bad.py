"""C3 violations: cross-module ALEX-C020 poke and ALEX-C021
iterate-while-mutating."""


def poke_foreign_index(store, key, value):
    # ALEX-C020 (cross-module): _index is owned by store.py; writing it
    # from here bypasses the designated writer API.
    store._index[key] = value


def drop_expired(index, is_expired):
    # ALEX-C021: pop() mutates the dict a for-loop is iterating live.
    for key in index:
        if is_expired(key):
            index.pop(key)
