"""Property-based tests for ALEX engine invariants under arbitrary feedback."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AlexConfig, AlexEngine
from repro.features import FeatureSpace
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity
from repro.rdf.terms import Literal, URIRef

LEFT_NAME = URIRef("http://a/ont/name")
RIGHT_NAME = URIRef("http://b/ont/name")

N = 6


def _make_space() -> FeatureSpace:
    space = FeatureSpace(theta=0.3)
    for i in range(N):
        left = Entity(URIRef(f"http://a/res/e{i}"), {LEFT_NAME: (Literal(f"Name{i} Jones"),)})
        for j in range(N):
            right = Entity(
                URIRef(f"http://b/res/e{j}"), {RIGHT_NAME: (Literal(f"Name{j} Jones"),)}
            )
            space.add_pair(left, right)
    space.freeze()
    return space


_SPACE = _make_space()
_ALL_LINKS = sorted(_SPACE.links(), key=lambda l: (l.left.value, l.right.value))

# A feedback script: (link index, verdict, end_episode_after?)
feedback_items = st.tuples(
    st.integers(0, len(_ALL_LINKS) - 1), st.booleans(), st.booleans()
)
feedback_scripts = st.lists(feedback_items, max_size=60)


def _run_script(script, **config_overrides) -> AlexEngine:
    settings_dict = dict(episode_size=10, seed=1, rollback_min_negatives=2,
                         rollback_negative_fraction=0.5)
    settings_dict.update(config_overrides)
    engine = AlexEngine(_SPACE, LinkSet([_ALL_LINKS[0]]), AlexConfig(**settings_dict))
    for index, positive, end_episode in script:
        engine.process_feedback(_ALL_LINKS[index], positive)
        if end_episode:
            engine.end_episode()
    return engine


class TestEngineInvariants:
    @given(feedback_scripts)
    @settings(max_examples=60, deadline=None)
    def test_candidates_and_blacklist_disjoint(self, script):
        engine = _run_script(script)
        assert not (set(engine.candidates) & engine.blacklist)

    @given(feedback_scripts)
    @settings(max_examples=60, deadline=None)
    def test_confirmed_links_are_candidates(self, script):
        engine = _run_script(script)
        # every confirmed link either remained a candidate or was later
        # negatively outvoted (then it must not be confirmed anymore)
        for link in engine.confirmed:
            assert link in engine.candidates

    @given(feedback_scripts)
    @settings(max_examples=60, deadline=None)
    def test_candidates_stay_within_space_or_initial(self, script):
        engine = _run_script(script)
        for link in engine.candidates:
            assert link in _SPACE or link == _ALL_LINKS[0]

    @given(feedback_scripts)
    @settings(max_examples=60, deadline=None)
    def test_q_values_bounded_by_rewards(self, script):
        engine = _run_script(script)
        for state_action in engine.values.known_pairs():
            q = engine.values.q(state_action)
            assert -1.0 <= q <= 1.0

    @given(feedback_scripts)
    @settings(max_examples=40, deadline=None)
    def test_deterministic_replay(self, script):
        first = _run_script(script)
        second = _run_script(script)
        assert first.candidates.snapshot() == second.candidates.snapshot()
        assert first.blacklist == second.blacklist

    @given(feedback_scripts)
    @settings(max_examples=40, deadline=None)
    def test_episode_history_consistent(self, script):
        engine = _run_script(script)
        boundaries = sum(1 for _, _, end in script if end)
        assert engine.episodes_completed == boundaries
        total_feedback = sum(stats.feedback_count for stats in engine.episode_history)
        total_feedback += engine.current_episode_size
        assert total_feedback == len(script)

    @given(feedback_scripts)
    @settings(max_examples=40, deadline=None)
    def test_persistence_round_trip_any_state(self, script):
        from repro.core.engine import AlexEngine

        engine = _run_script(script)
        engine.end_episode()  # persistence restores at episode boundaries
        restored = AlexEngine.from_dict(_SPACE, engine.to_dict())
        assert restored.candidates.snapshot() == engine.candidates.snapshot()
        assert restored.blacklist == engine.blacklist
        assert restored.episodes_completed == engine.episodes_completed
