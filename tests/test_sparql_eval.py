"""Unit tests for SPARQL evaluation."""

import pytest

from repro.rdf import turtle
from repro.rdf.terms import Literal, URIRef
from repro.sparql import Var, query
from repro.sparql.eval import QueryResult


@pytest.fixture()
def graph():
    return turtle.load(
        """
        @prefix ex: <http://x/> .
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .
        ex:lebron a foaf:Person ; foaf:name "LeBron James" ;
                  ex:birthYear 1984 ; ex:team ex:heat .
        ex:durant a foaf:Person ; foaf:name "Kevin Durant" ; ex:birthYear 1988 .
        ex:curry a foaf:Person ; foaf:name "Stephen Curry" ; ex:birthYear 1988 .
        ex:heat foaf:name "Miami Heat" .
        """
    )


PREFIXES = "PREFIX ex: <http://x/> PREFIX foaf: <http://xmlns.com/foaf/0.1/> "


class TestBGP:
    def test_single_pattern(self, graph):
        result = query(graph, PREFIXES + "SELECT ?p WHERE { ?p a foaf:Person }")
        assert len(result) == 3

    def test_join(self, graph):
        result = query(
            graph,
            PREFIXES + "SELECT ?name WHERE { ?p ex:team ex:heat ; foaf:name ?name }",
        )
        assert result.column("name") == [Literal("LeBron James")]

    def test_join_consistency(self, graph):
        # ?p must bind consistently across patterns.
        result = query(
            graph,
            PREFIXES + "SELECT ?p WHERE { ?p ex:birthYear 1988 . ?p foaf:name \"LeBron James\" }",
        )
        assert len(result) == 0

    def test_no_match(self, graph):
        result = query(graph, PREFIXES + "SELECT ?p WHERE { ?p ex:birthYear 1900 }")
        assert len(result) == 0


class TestFilter:
    def test_numeric_comparison(self, graph):
        result = query(
            graph,
            PREFIXES + "SELECT ?p WHERE { ?p ex:birthYear ?y FILTER (?y < 1985) }",
        )
        assert len(result) == 1

    def test_regex_case_insensitive(self, graph):
        result = query(
            graph,
            PREFIXES + 'SELECT ?p WHERE { ?p foaf:name ?n FILTER (REGEX(?n, "durant", "i")) }',
        )
        assert len(result) == 1

    def test_boolean_and(self, graph):
        result = query(
            graph,
            PREFIXES
            + 'SELECT ?p WHERE { ?p ex:birthYear ?y ; foaf:name ?n '
            + 'FILTER (?y = 1988 && CONTAINS(?n, "Curry")) }',
        )
        assert len(result) == 1

    def test_unbound_var_in_filter_eliminates(self, graph):
        result = query(
            graph, PREFIXES + "SELECT ?p WHERE { ?p a foaf:Person FILTER (?zzz > 1) }"
        )
        assert len(result) == 0

    def test_bound_function(self, graph):
        result = query(
            graph,
            PREFIXES
            + "SELECT ?p WHERE { ?p a foaf:Person OPTIONAL { ?p ex:team ?t } FILTER (BOUND(?t)) }",
        )
        assert len(result) == 1

    def test_strstarts(self, graph):
        result = query(
            graph,
            PREFIXES + 'SELECT ?n WHERE { ?p foaf:name ?n FILTER (STRSTARTS(?n, "Miami")) }',
        )
        assert len(result) == 1


class TestOptionalUnion:
    def test_optional_keeps_unmatched(self, graph):
        result = query(
            graph,
            PREFIXES + "SELECT ?p ?t WHERE { ?p a foaf:Person OPTIONAL { ?p ex:team ?t } }",
        )
        assert len(result) == 3
        teams = [t for t in result.column("t") if t is not None]
        assert len(teams) == 1

    def test_union(self, graph):
        result = query(
            graph,
            PREFIXES
            + "SELECT ?p WHERE { { ?p ex:birthYear 1984 } UNION { ?p ex:birthYear 1988 } }",
        )
        assert len(result) == 3


class TestSolutionModifiers:
    def test_distinct(self, graph):
        result = query(
            graph, PREFIXES + "SELECT DISTINCT ?y WHERE { ?p ex:birthYear ?y }"
        )
        assert len(result) == 2

    def test_order_by_asc(self, graph):
        result = query(
            graph, PREFIXES + "SELECT ?y WHERE { ?p ex:birthYear ?y } ORDER BY ?y"
        )
        years = [int(str(v)) for v in result.column("y")]
        assert years == sorted(years)

    def test_order_by_desc(self, graph):
        result = query(
            graph,
            PREFIXES + "SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY DESC(?n)",
        )
        names = [str(v) for v in result.column("n")]
        assert names == sorted(names, reverse=True)

    def test_limit_offset(self, graph):
        all_rows = query(graph, PREFIXES + "SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ?n")
        page = query(
            graph,
            PREFIXES + "SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ?n LIMIT 2 OFFSET 1",
        )
        assert page.column("n") == all_rows.column("n")[1:3]


class TestAsk:
    def test_ask_true(self, graph):
        assert query(graph, PREFIXES + "ASK { ex:lebron ex:team ex:heat }") is True

    def test_ask_false(self, graph):
        assert query(graph, PREFIXES + "ASK { ex:durant ex:team ex:heat }") is False


class TestQueryResult:
    def test_as_tuples_order(self, graph):
        result = query(
            graph, PREFIXES + "SELECT ?p ?y WHERE { ?p ex:birthYear ?y } ORDER BY ?y"
        )
        assert isinstance(result, QueryResult)
        for row in result.as_tuples():
            assert isinstance(row[0], URIRef)
            assert isinstance(row[1], Literal)

    def test_column_by_string(self, graph):
        result = query(graph, PREFIXES + "SELECT ?y WHERE { ?p ex:birthYear ?y }")
        assert result.column("?y") == result.column(Var("y"))
