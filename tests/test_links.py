"""Unit tests for Link and LinkSet."""

import pytest

from repro.links import Link, LinkSet, change_fraction
from repro.rdf.graph import Graph
from repro.rdf.namespaces import OWL_SAMEAS
from repro.rdf.terms import URIRef
from repro.rdf.triples import Triple


def link(a: str, b: str) -> Link:
    return Link(URIRef(f"http://a/{a}"), URIRef(f"http://b/{b}"))


class TestLink:
    def test_reversed(self):
        l = link("x", "y")
        assert l.reversed() == Link(l.right, l.left)

    def test_n3(self):
        assert "sameAs" in link("x", "y").n3()


class TestLinkSet:
    def test_add_and_contains(self):
        links = LinkSet()
        assert links.add(link("x", "y")) is True
        assert links.add(link("x", "y")) is False
        assert link("x", "y") in links
        assert len(links) == 1

    def test_scores(self):
        links = LinkSet()
        links.add(link("x", "y"), score=0.9)
        assert links.score(link("x", "y")) == 0.9
        assert links.score(link("a", "b")) is None
        assert links.score(link("a", "b"), default=0.0) == 0.0

    def test_remove(self):
        links = LinkSet([link("x", "y")])
        assert links.remove(link("x", "y")) is True
        assert links.remove(link("x", "y")) is False
        assert not links
        assert links.by_left(URIRef("http://a/x")) == frozenset()

    def test_by_left_right(self):
        links = LinkSet([link("x", "y"), link("x", "z")])
        assert links.by_left(URIRef("http://a/x")) == {
            URIRef("http://b/y"),
            URIRef("http://b/z"),
        }
        assert links.by_right(URIRef("http://b/y")) == {URIRef("http://a/x")}

    def test_counterparts_both_sides(self):
        links = LinkSet([link("x", "y")])
        assert links.counterparts(URIRef("http://a/x")) == {URIRef("http://b/y")}
        assert links.counterparts(URIRef("http://b/y")) == {URIRef("http://a/x")}

    def test_links_of(self):
        links = LinkSet([link("x", "y"), link("z", "y")])
        assert set(links.links_of(URIRef("http://b/y"))) == {link("x", "y"), link("z", "y")}

    def test_filter_by_score_drops_unscored(self):
        links = LinkSet()
        links.add(link("a", "b"), score=0.9)
        links.add(link("c", "d"), score=0.5)
        links.add(link("e", "f"))  # unscored
        kept = links.filter_by_score(0.8)
        assert set(kept) == {link("a", "b")}

    def test_copy_independent(self):
        links = LinkSet([link("x", "y")])
        clone = links.copy()
        clone.add(link("a", "b"))
        assert len(links) == 1 and len(clone) == 2

    def test_snapshot_frozen(self):
        links = LinkSet([link("x", "y")])
        snap = links.snapshot()
        links.add(link("a", "b"))
        assert snap == frozenset({link("x", "y")})

    def test_graph_round_trip(self):
        links = LinkSet([link("x", "y"), link("a", "b")])
        graph = links.to_graph()
        assert len(graph) == 2
        back = LinkSet.from_graph(graph)
        assert back == links

    def test_from_graph_ignores_other_predicates(self):
        graph = Graph()
        graph.add(Triple(URIRef("http://a/x"), OWL_SAMEAS, URIRef("http://b/y")))
        graph.add(Triple(URIRef("http://a/x"), URIRef("http://p/other"), URIRef("http://b/z")))
        assert len(LinkSet.from_graph(graph)) == 1

    def test_update(self):
        links = LinkSet([link("x", "y")])
        added = links.update([link("x", "y"), link("a", "b")])
        assert added == 1


class TestChangeFraction:
    def test_no_change(self):
        snap = frozenset({link("x", "y")})
        assert change_fraction(snap, snap) == 0.0

    def test_all_changed(self):
        before = frozenset({link("x", "y")})
        after = frozenset({link("a", "b")})
        assert change_fraction(before, after) == 2.0  # one removed + one added

    def test_empty_before(self):
        assert change_fraction(frozenset(), frozenset({link("x", "y")})) == 1.0

    def test_five_percent_rule(self):
        before = frozenset(link(f"x{i}", f"y{i}") for i in range(100))
        after = frozenset(set(before) | {link("new", "one")})
        assert change_fraction(before, after) == pytest.approx(0.01)
