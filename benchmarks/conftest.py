"""Shared benchmark fixtures.

Every bench regenerates one paper table/figure: it runs the experiment once
(via ``benchmark.pedantic``) and prints the same rows/series the paper
reports. Absolute numbers differ from the paper (synthetic data, Python,
laptop); the shape — who wins, direction of curves, convergence behaviour —
is asserted where it is stable.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run a zero-argument experiment callable exactly once under timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner


def print_report(report) -> None:
    """Print a FigureReport under a visible separator."""
    print()
    print(report.render())
