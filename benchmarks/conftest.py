"""Shared benchmark fixtures.

Every bench regenerates one paper table/figure: it runs the experiment once
(via ``benchmark.pedantic``) and prints the same rows/series the paper
reports. Absolute numbers differ from the paper (synthetic data, Python,
laptop); the shape — who wins, direction of curves, convergence behaviour —
is asserted where it is stable.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run a zero-argument experiment callable exactly once under timing.

    The run executes inside a fresh obs registry, and its metrics snapshot
    is attached to the benchmark record (``extra_info["obs"]``) so saved
    benchmark JSON carries the where-did-the-time-go breakdown alongside
    the wall numbers.
    """
    from repro import obs

    def runner(fn):
        with obs.use_registry() as registry:
            result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
            benchmark.extra_info["obs"] = registry.snapshot()
        return result

    return runner


def print_report(report) -> None:
    """Print a FigureReport under a visible separator."""
    print()
    print(report.render())
