"""Ablation (beyond the paper): token blocking in feature-space construction.

The paper's Section 6.1 filters the space *after* scoring; our construction
additionally avoids scoring most pairs at all via token blocking. This bench
verifies the optimization is sound (no reachable ground truth lost) and
measures the speedup against the naive quadratic construction.
"""

import time

from conftest import print_report

from repro.evaluation.report import format_table
from repro.experiments import FigureReport, get_pair
from repro.features import FeatureSpace


def _run():
    pair = get_pair("opencyc_lexvo")  # small enough for the quadratic build

    started = time.perf_counter()
    blocked = FeatureSpace.build(pair.left, pair.right, use_blocking=True)
    blocked_seconds = time.perf_counter() - started

    started = time.perf_counter()
    naive = FeatureSpace.build(pair.left, pair.right, use_blocking=False)
    naive_seconds = time.perf_counter() - started

    truth_blocked = sum(1 for link in pair.ground_truth if link in blocked)
    truth_naive = sum(1 for link in pair.ground_truth if link in naive)
    rows = [
        ("with token blocking", blocked.size, truth_blocked, f"{blocked_seconds:.2f}"),
        ("naive quadratic", naive.size, truth_naive, f"{naive_seconds:.2f}"),
    ]
    body = format_table(("construction", "pairs kept", "ground truth kept", "seconds"), rows)
    body += f"\nspeedup: {naive_seconds / max(1e-9, blocked_seconds):.1f}x"
    report = FigureReport("Ablation", "Token blocking in space construction", body)
    report.results = {  # type: ignore[assignment]
        "stats": {
            "blocked_seconds": blocked_seconds,
            "naive_seconds": naive_seconds,
            "truth_blocked": truth_blocked,
            "truth_naive": truth_naive,
            "blocked_size": blocked.size,
            "naive_size": naive.size,
        }
    }
    return report


def test_ablation_blocking(run_once):
    report = run_once(_run)
    print_report(report)
    stats = report.results["stats"]
    assert stats["truth_blocked"] >= stats["truth_naive"] * 0.95, (
        "blocking loses (almost) no reachable ground truth"
    )
    assert stats["blocked_seconds"] < stats["naive_seconds"], "blocking is faster"
    assert stats["blocked_size"] <= stats["naive_size"], (
        "blocking never adds pairs the naive build would not"
    )
