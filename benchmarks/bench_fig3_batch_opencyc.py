"""Figure 3: batch-mode link quality, OpenCyc vs NYTimes/Drugbank/Lexvo.

Paper shape: same three starting profiles as Figure 2 (low recall / low
precision / both low), repaired by ALEX on the smaller OpenCyc-based pairs
in fewer episodes.
"""

from conftest import print_report

from repro.experiments import figure_3a, figure_3b, figure_3c


def test_fig3a_opencyc_nytimes(run_once):
    report = run_once(figure_3a)
    print_report(report)
    result = report.results["fig3a"]
    assert result.initial_quality.precision > 0.8
    assert result.initial_quality.recall < 0.6
    assert result.final_quality.f_measure > 0.9
    assert result.final_quality.recall > 0.85


def test_fig3b_opencyc_drugbank(run_once):
    report = run_once(figure_3b)
    print_report(report)
    result = report.results["fig3b"]
    assert result.initial_quality.precision < 0.4
    assert result.initial_quality.recall > 0.95
    assert result.final_quality.f_measure > 0.9


def test_fig3c_opencyc_lexvo(run_once):
    report = run_once(figure_3c)
    print_report(report)
    result = report.results["fig3c"]
    assert result.initial_quality.precision < 0.5
    assert result.initial_quality.recall < 0.7
    assert result.final_quality.f_measure > 0.9
