"""Ablation: FedX-style exclusive groups in the federated executor.

Consecutive triple patterns answerable by exactly one endpoint ship as one
subquery. The bench verifies identical answers and measures the request
reduction on a mixed three-pattern query.
"""

from conftest import print_report

from repro.evaluation.report import format_table
from repro.experiments import FigureReport
from repro.federation import Endpoint, FederatedEngine
from repro.links import Link, LinkSet
from repro.rdf import turtle
from repro.rdf.terms import URIRef

QUERY = """
PREFIX db: <http://db/>
PREFIX nyt: <http://nyt/>
SELECT ?name ?article WHERE {
  ?p db:award db:mvp .
  ?p db:name ?name .
  ?p nyt:topicOf ?article .
}
"""


def _build():
    db_lines = ["@prefix db: <http://db/> ."]
    nyt_lines = ["@prefix nyt: <http://nyt/> ."]
    links = LinkSet()
    for i in range(40):
        db_lines.append(f'db:p{i} db:award db:mvp ; db:name "Player {i}" .')
        nyt_lines.append(f"nyt:p{i} nyt:topicOf nyt:a{i} .")
        links.add(Link(URIRef(f"http://db/p{i}"), URIRef(f"http://nyt/p{i}")))
    return turtle.load("\n".join(db_lines)), turtle.load("\n".join(nyt_lines)), links


def _run():
    dbpedia, nytimes, links = _build()
    requests = {}
    answers = {}
    for grouped in (True, False):
        db_ep, nyt_ep = Endpoint(dbpedia, "db"), Endpoint(nytimes, "nyt")
        engine = FederatedEngine([db_ep, nyt_ep], links, group_exclusive=grouped)
        result = engine.select(QUERY)
        key = "grouped" if grouped else "per-pattern"
        requests[key] = db_ep.request_count + nyt_ep.request_count
        answers[key] = len(result)
    rows = [
        ("exclusive groups", answers["grouped"], requests["grouped"]),
        ("per-pattern joins", answers["per-pattern"], requests["per-pattern"]),
    ]
    body = format_table(("execution", "answers", "endpoint requests"), rows)
    report = FigureReport("Ablation", "Exclusive groups cut federation requests", body)
    report.results = {"requests": requests, "answers": answers}  # type: ignore[assignment]
    return report


def test_ablation_exclusive_groups(run_once):
    report = run_once(_run)
    print_report(report)
    assert report.results["answers"]["grouped"] == report.results["answers"]["per-pattern"]
    assert report.results["requests"]["grouped"] < report.results["requests"]["per-pattern"]
