"""Ablation: equal-size partitioning preserves link quality (Section 6.2).

Paper claim: "Equal-size partitioning enables parallelism that significantly
reduces execution time without sacrificing the quality of candidate links."
This bench runs the same workload unpartitioned and with 4 partitions and
compares the final quality.
"""

from conftest import print_report

from repro.evaluation.report import format_table
from repro.experiments import FigureReport, run_scenario, scenario


def _run():
    base = scenario("fig3a")
    single = run_scenario(base.with_changes(key="partition-1"))
    partitioned = run_scenario(
        base.with_changes(key="partition-4", n_partitions=4, max_episodes=40)
    )
    rows = [
        ("1 partition", f"{single.final_quality.precision:.3f}",
         f"{single.final_quality.recall:.3f}", f"{single.final_quality.f_measure:.3f}"),
        ("4 partitions", f"{partitioned.final_quality.precision:.3f}",
         f"{partitioned.final_quality.recall:.3f}", f"{partitioned.final_quality.f_measure:.3f}"),
    ]
    body = format_table(("configuration", "precision", "recall", "f-measure"), rows)
    return FigureReport(
        "Ablation", "Equal-size partitioning preserves quality", body,
        {"single": single, "partitioned": partitioned},
    )


def test_ablation_partitioning(run_once):
    report = run_once(_run)
    print_report(report)
    single = report.results["single"]
    partitioned = report.results["partitioned"]
    assert partitioned.final_quality.f_measure > single.final_quality.f_measure - 0.15, (
        "partitioning does not sacrifice link quality"
    )
    assert partitioned.final_quality.recall > 0.7
