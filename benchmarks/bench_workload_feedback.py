"""Beyond the paper: query-driven vs link-driven feedback.

The paper evaluates with direct link sampling (Section 7.1) but deploys
through query answers (Section 3.2). This bench runs both feedback routes on
the same workload and verifies they reach comparable link quality — the
claim that makes the evaluation methodology representative of the deployment.
"""

from conftest import print_report

from repro.core import AlexConfig, AlexEngine
from repro.evaluation import QualityTracker, evaluate_links
from repro.evaluation.report import format_table
from repro.experiments import FigureReport, get_pair
from repro.features import FeatureSpace
from repro.federation import Endpoint, FederatedEngine
from repro.feedback import (
    FeedbackSession,
    GroundTruthOracle,
    QueryWorkloadGenerator,
    WorkloadSession,
)
from repro.paris import paris_links

PAIR_KEY = "dbpedia_nba_nytimes"
EPISODES = 40
BUDGET = 25


def _run():
    pair = get_pair(PAIR_KEY)
    space = FeatureSpace.build(pair.left, pair.right)
    initial = paris_links(pair.left, pair.right, score_threshold=0.8)
    oracle = GroundTruthOracle(pair.ground_truth)
    config = AlexConfig(episode_size=BUDGET, seed=2, rollback_min_negatives=3)

    # Route 1: direct link sampling (the paper's evaluation loop).
    link_engine = AlexEngine(space, initial.copy(), config)
    link_session = FeedbackSession(link_engine, oracle, seed=2)
    link_session.run(episode_size=BUDGET, max_episodes=EPISODES)
    link_quality = evaluate_links(link_engine.candidates, pair.ground_truth)

    # Route 2: feedback through federated query answers (the deployment).
    query_engine = AlexEngine(space, initial.copy(), config)
    federation = FederatedEngine(
        [Endpoint(pair.left), Endpoint(pair.right)], links=query_engine.candidates
    )
    generator = QueryWorkloadGenerator(pair.left, pair.right, seed=2)
    workload = WorkloadSession(query_engine, federation, generator, oracle, seed=2)
    workload.run(episodes=EPISODES, feedback_budget=BUDGET)
    query_quality = evaluate_links(query_engine.candidates, pair.ground_truth)

    rows = [
        ("direct link sampling (paper §7.1)",
         f"{link_quality.precision:.3f}", f"{link_quality.recall:.3f}",
         f"{link_quality.f_measure:.3f}", "-"),
        ("federated query answers (paper §3.2)",
         f"{query_quality.precision:.3f}", f"{query_quality.recall:.3f}",
         f"{query_quality.f_measure:.3f}",
         f"{workload.queries_issued} queries / {workload.queries_answered} answered"),
    ]
    body = format_table(("feedback route", "precision", "recall", "f-measure", "traffic"), rows)
    report = FigureReport(
        "Beyond-paper", "Query-driven vs link-driven feedback", body
    )
    report.results = {"link": link_quality, "query": query_quality}  # type: ignore[assignment]
    return report


def test_workload_feedback(run_once):
    report = run_once(_run)
    print_report(report)
    link_quality = report.results["link"]
    query_quality = report.results["query"]
    assert query_quality.f_measure > 0.75, "query-driven feedback reaches good quality"
    assert abs(query_quality.f_measure - link_quality.f_measure) < 0.25, (
        "both feedback routes land in the same quality regime"
    )
