"""Figure 4: specific-domain linking with 10-item feedback episodes.

Paper shape: the small ground truths (SW Dogfood, NBA extracts) are repaired
with very little feedback; ALEX discovers a substantial number of new links
on top of the linker's output (paper: 84/51/43/19 new links).
"""

from conftest import print_report

from repro.experiments import figure_4a, figure_4b, figure_4c, figure_4d


def test_fig4a_dbpedia_swdogfood(run_once):
    report = run_once(figure_4a)
    print_report(report)
    result = report.results["fig4a"]
    assert result.scenario.episode_size == 10, "domain mode uses 10-item episodes"
    assert result.final_quality.f_measure > 0.8
    assert result.new_links_found > 0, "new links are discovered"


def test_fig4b_opencyc_swdogfood(run_once):
    report = run_once(figure_4b)
    print_report(report)
    result = report.results["fig4b"]
    assert result.final_quality.f_measure > 0.85
    assert result.final_quality.recall > result.initial_quality.recall


def test_fig4c_dbpedia_nba(run_once):
    report = run_once(figure_4c)
    print_report(report)
    result = report.results["fig4c"]
    assert result.final_quality.f_measure > 0.8
    assert result.new_links_found > 0


def test_fig4d_opencyc_nba(run_once):
    report = run_once(figure_4d)
    print_report(report)
    result = report.results["fig4d"]
    assert result.final_quality.f_measure > 0.85
    assert result.final_quality.recall > result.initial_quality.recall
