"""Section 7.3: execution time, batch mode vs specific-domain mode.

Paper shape: batch-mode episodes are orders of magnitude more expensive
than domain-mode episodes (minutes vs ~1.3 s at the paper's scale); at our
scale both are fast but the batch/domain ratio remains large.
"""

from conftest import print_report

from repro.experiments import execution_time


def test_execution_time(run_once):
    report = run_once(execution_time)
    print_report(report)
    batch = report.results["batch"]
    domain = report.results["domain"]
    assert batch.seconds_per_episode > domain.seconds_per_episode, (
        "batch episodes cost more than domain episodes"
    )
    ratio = batch.seconds_per_episode / domain.seconds_per_episode
    assert ratio > 2, "the batch/domain cost gap is substantial"
