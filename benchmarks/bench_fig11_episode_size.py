"""Figure 11 / Appendix D: episode-size sensitivity (100 / 200 / 300;
paper: 500 / 1000 / 1500, scaled 1:5 with the data).

Paper shape: the F-measures of all episode sizes end close to each other,
and a larger episode size converges in fewer episodes (each episode carries
more feedback). Paper: 26 / 14 / 13 episodes for 500 / 1000 / 1500.
"""

from conftest import print_report

from repro.experiments import figure_11


def test_fig11_episode_size(run_once):
    report = run_once(figure_11)
    print_report(report)
    results = {int(k): v for k, v in report.results.items()}

    final_f = {size: r.final_quality.f_measure for size, r in results.items()}
    assert max(final_f.values()) - min(final_f.values()) < 0.2, (
        "episode size has only a mild effect on final quality"
    )

    def episodes_to_stop(result):
        return result.converged_at if result.converged_at is not None else result.episodes_run + 1

    assert episodes_to_stop(results[300]) <= episodes_to_stop(results[100]), (
        "larger episodes converge in fewer episodes"
    )
