"""Figure 5: search-space filtering.

Paper shape: θ-filtering removes ~95% of the possible links between the
first DBpedia partition and NYTimes (5a), and the ground truth is a tiny
fraction of even the filtered space (5b) — ALEX finds needles in that
haystack.
"""

from conftest import print_report

from repro.experiments import figure_5


def test_fig5_filtering(run_once):
    report = run_once(figure_5)
    print_report(report)
    stats = report.results["stats"]
    total = stats["total"]
    filtered = stats["filtered"]
    truth = stats["truth"]
    assert filtered < total * 0.1, "filtering removes >90% of the space (paper: 95%)"
    assert truth < filtered * 0.1, "ground truth is a small fraction of the filtered space"
    assert truth > 0, "the filtered space still contains the ground truth"
