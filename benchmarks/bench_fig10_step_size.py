"""Figure 10 / Appendix D: step-size sensitivity (0.01 / 0.05 / 0.1).

Paper shape: F-measure varies only slightly across step sizes; a larger
step discovers correct links slightly faster (recall gap) but costs more
negative feedback in early episodes, because the wider range sweeps in more
incorrect links.
"""

from conftest import print_report

from repro.experiments import figure_10


def test_fig10_step_size(run_once):
    report = run_once(figure_10)
    print_report(report)
    results = {float(k): v for k, v in report.results.items()}

    final_f = {step: r.final_quality.f_measure for step, r in results.items()}
    assert max(final_f.values()) - min(final_f.values()) < 0.25, (
        "F-measure is not overly sensitive to the step size"
    )
    for result in results.values():
        assert result.final_quality.f_measure > 0.75, "all step sizes converge well"

    # Early negative feedback grows with the step size (paper 10(c)).
    early_negative = {
        step: sum(r.tracker.negative_feedback_series()[:3]) / 3
        for step, r in results.items()
    }
    assert early_negative[0.1] > early_negative[0.01], (
        "a larger step size costs more negative feedback early on"
    )
