"""Figure 9 / Appendix C: effect of 10% incorrect feedback.

Paper shape: recall is robust to incorrect feedback (the RL exploration
machinery still finds the links); precision degrades slightly because
incorrect positive feedback keeps some wrong links alive; the overall
degradation is small.
"""

from conftest import print_report

from repro.experiments import figure_9


def test_fig9_incorrect_feedback(run_once):
    report = run_once(figure_9)
    print_report(report)
    correct = report.results["correct"]
    noisy = report.results["noisy"]

    assert noisy.final_quality.recall > 0.7, "recall is robust to incorrect feedback"
    assert noisy.final_quality.recall >= correct.final_quality.recall - 0.2
    assert noisy.final_quality.precision <= correct.final_quality.precision, (
        "precision degrades (slightly) under incorrect feedback"
    )
    assert noisy.final_quality.f_measure > 0.7, (
        "ALEX still produces good links despite 10% incorrect feedback"
    )
