"""Ablation (beyond the paper): learned policy vs uniform-random actions.

The paper motivates learning by arguing that "exploring around a random
feature is not effective since it incorrectly assumes that all features are
of equal importance". This bench quantifies that claim: the same workload
run with (a) the full learned ε-greedy policy and (b) a policy that always
picks actions uniformly at random (ε ≈ 1, no cross-state learning).
"""

from conftest import print_report

from repro.evaluation.report import format_table
from repro.experiments import FigureReport, run_scenario, scenario


def _run():
    base = scenario("fig2a")
    learned = run_scenario(base.with_changes(key="ablation-learned"))
    random_policy = run_scenario(
        base.with_changes(
            key="ablation-random",
            epsilon=0.99,
            use_distinctiveness=False,
            max_episodes=30,
        )
    )
    rows = [
        ("learned (ε-greedy + distinctiveness)",
         f"{learned.final_quality.f_measure:.3f}",
         learned.converged_at if learned.converged_at is not None else ">30",
         f"{min(learned.tracker.precision_series()[1:]):.3f}"),
        ("uniform random actions",
         f"{random_policy.final_quality.f_measure:.3f}",
         random_policy.converged_at if random_policy.converged_at is not None else ">30",
         f"{min(random_policy.tracker.precision_series()[1:]):.3f}"),
    ]
    body = format_table(("policy", "final F", "converged at", "worst precision"), rows)
    return FigureReport(
        "Ablation", "Learned policy vs uniform-random actions", body,
        {"learned": learned, "random": random_policy},
    )


def test_ablation_policy(run_once):
    report = run_once(_run)
    print_report(report)
    learned = report.results["learned"]
    random_policy = report.results["random"]
    assert learned.final_quality.f_measure >= random_policy.final_quality.f_measure, (
        "learning which feature to explore beats random exploration"
    )
    worst_learned = min(learned.tracker.precision_series()[1:])
    worst_random = min(random_policy.tracker.precision_series()[1:])
    assert worst_learned >= worst_random - 0.05, (
        "the learned policy avoids the deep precision collapses of random actions"
    )
