"""Ablation (beyond the paper): θ sensitivity of the space filter.

Section 6.1 fixes θ = 0.3. This bench sweeps θ and measures the tradeoff:
a higher θ shrinks the search space (cheaper exploration) but risks cutting
reachable ground truth (a recall ceiling); a lower θ keeps everything but
bloats the space with junk pairs.
"""

from conftest import print_report

from repro.evaluation.report import format_table
from repro.experiments import FigureReport, get_pair
from repro.features import FeatureSpace


def _run():
    pair = get_pair("opencyc_nytimes")
    rows = []
    stats = {}
    for theta in (0.3, 0.7, 0.9, 0.97):
        space = FeatureSpace.build(pair.left, pair.right, theta=theta)
        reachable = sum(1 for link in pair.ground_truth if link in space)
        rows.append(
            (theta, space.size, reachable, f"{100.0 * reachable / len(pair.ground_truth):.1f}%")
        )
        stats[theta] = {"size": space.size, "reachable": reachable}
    body = format_table(
        ("theta", "space size", "reachable ground truth", "recall ceiling"), rows
    )
    report = FigureReport("Ablation", "θ sensitivity of the space filter", body)
    report.results = {"stats": stats, "truth": len(pair.ground_truth)}  # type: ignore[assignment]
    return report


def test_ablation_theta(run_once):
    report = run_once(_run)
    print_report(report)
    stats = report.results["stats"]
    sizes = [stats[theta]["size"] for theta in sorted(stats)]
    assert sizes == sorted(sizes, reverse=True), "higher θ shrinks the space"
    # the paper's θ=0.3 keeps (nearly) all ground truth reachable
    assert stats[0.3]["reachable"] >= report.results["truth"] * 0.95
    # a near-exact-match θ costs reachable ground truth
    assert stats[0.97]["reachable"] < stats[0.3]["reachable"]
