"""Figure 2: batch-mode link quality, DBpedia vs NYTimes/Drugbank/Lexvo.

Paper shapes:
* 2(a) — initial links precise but low-recall; recall jumps sharply within
  the first episodes, precision recovers after a dip, F converges high.
* 2(b) — initial precision < 0.3 with near-perfect recall; ALEX removes the
  incorrect links, reaching F ≈ 0.99, while recall stays high.
* 2(c) — both measures start low; recall is repaired within a few episodes
  and precision follows.
"""

from conftest import print_report

from repro.experiments import figure_2a, figure_2b, figure_2c


def test_fig2a_dbpedia_nytimes(run_once):
    report = run_once(figure_2a)
    print_report(report)
    result = report.results["fig2a"]
    assert result.initial_quality.precision > 0.8, "linker starts precise"
    assert result.initial_quality.recall < 0.5, "linker starts with low recall"
    assert result.final_quality.recall > 0.85, "ALEX repairs recall"
    assert result.final_quality.f_measure > 0.9, "F converges high"
    assert result.new_links_found > result.ground_truth_size * 0.4, (
        "a large share of ground truth is newly discovered (paper: 7568 of 10968)"
    )


def test_fig2b_dbpedia_drugbank(run_once):
    report = run_once(figure_2b)
    print_report(report)
    result = report.results["fig2b"]
    assert result.initial_quality.precision < 0.3, "starts with low precision"
    assert result.initial_quality.recall > 0.95, "starts with high recall"
    assert result.final_quality.f_measure > 0.95, "paper reaches F = 0.99"
    assert result.final_quality.recall >= result.initial_quality.recall - 0.05, (
        "recall is preserved while precision is repaired"
    )


def test_fig2c_dbpedia_lexvo(run_once):
    report = run_once(figure_2c)
    print_report(report)
    result = report.results["fig2c"]
    assert result.initial_quality.precision < 0.5, "starts with low precision"
    assert result.initial_quality.recall < 0.7, "starts with low recall"
    assert result.final_quality.f_measure > 0.9, "both measures repaired"
    recall = result.tracker.recall_series()
    assert max(recall[:4]) > 0.8, "recall is repaired within the first episodes"
