"""Beyond the paper: scalability of ALEX with dataset size.

The paper reports wall-clock on one dataset size per pair; this bench sweeps
the synthetic generator's scale and measures how space construction and
per-episode cost grow. Expected shape: space size grows roughly linearly in
entity count (token blocking keeps the pair blow-up in check) and episode
cost follows the space size.
"""

import time

from conftest import print_report

from repro.core import AlexConfig, AlexEngine
from repro.datasets import MULTI_DOMAIN_PROFILES, PairSpec, generate_pair
from repro.evaluation.report import format_table
from repro.experiments import FigureReport
from repro.features import FeatureSpace
from repro.feedback import FeedbackSession, GroundTruthOracle
from repro.paris import paris_links


def _spec(scale: int) -> PairSpec:
    return PairSpec(
        name=f"scale-{scale}",
        left_name="left",
        right_name="right",
        profiles=MULTI_DOMAIN_PROFILES,
        n_shared=50 * scale,
        n_left_only=60 * scale,
        n_right_only=30 * scale,
        noise_left=0.12,
        noise_right=0.4,
        seed=91,
    )


def _run():
    rows = []
    stats = {}
    for scale in (1, 2, 4):
        pair = generate_pair(_spec(scale))
        started = time.perf_counter()
        space = FeatureSpace.build(pair.left, pair.right)
        build_seconds = time.perf_counter() - started

        initial = paris_links(pair.left, pair.right, 0.88)
        engine = AlexEngine(space, initial, AlexConfig(episode_size=100, seed=7))
        session = FeedbackSession(engine, GroundTruthOracle(pair.ground_truth), seed=3)
        started = time.perf_counter()
        episodes = session.run(episode_size=100, max_episodes=10)
        per_episode_ms = 1000.0 * (time.perf_counter() - started) / max(1, episodes)

        entities = sum(1 for _ in pair.left.entities()) + sum(1 for _ in pair.right.entities())
        rows.append(
            (scale, entities, space.size, f"{build_seconds:.2f}", f"{per_episode_ms:.1f}")
        )
        stats[scale] = {
            "entities": entities,
            "space": space.size,
            "build_seconds": build_seconds,
            "per_episode_ms": per_episode_ms,
        }
    body = format_table(
        ("scale", "entities", "space size", "space build s", "ms/episode"), rows
    )
    report = FigureReport("Beyond-paper", "Scalability with dataset size", body)
    report.results = {"stats": stats}  # type: ignore[assignment]
    return report


def test_scalability(run_once):
    report = run_once(_run)
    print_report(report)
    stats = report.results["stats"]
    assert stats[4]["space"] > stats[1]["space"], "the space grows with the data"
    # token blocking keeps growth below quadratic: 4x entities must produce
    # clearly fewer than 16x pairs (measured ~11x: n^1.7)
    growth = stats[4]["space"] / stats[1]["space"]
    entity_growth = stats[4]["entities"] / stats[1]["entities"]
    assert growth < entity_growth ** 2 * 0.8, "pair growth is sub-quadratic"
