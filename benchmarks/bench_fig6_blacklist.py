"""Figure 6: effect of the blacklist.

Paper shape: (a) a modest F-measure gain with the blacklist; (b) a clearly
lower — and falling — fraction of negative feedback per episode, because a
rejected link is never proposed to the user again.
"""

from conftest import print_report

from repro.experiments import figure_6


def test_fig6_blacklist(run_once):
    report = run_once(figure_6)
    print_report(report)
    with_blacklist = report.results["with"]
    without_blacklist = report.results["without"]
    assert (
        with_blacklist.final_quality.f_measure
        >= without_blacklist.final_quality.f_measure
    ), "the blacklist does not hurt final F"

    neg_with = with_blacklist.tracker.negative_feedback_series()
    neg_without = without_blacklist.tracker.negative_feedback_series()
    tail = min(len(neg_with), len(neg_without)) // 2
    late_with = sum(neg_with[-tail:]) / tail
    late_without = sum(neg_without[-tail:]) / tail
    assert late_with < late_without, (
        "with the blacklist the user sees clearly less negative feedback"
    )
    assert neg_with[-1] < neg_with[0], "negative feedback falls over time"
