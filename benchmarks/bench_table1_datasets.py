"""Table 1: the dataset inventory.

Paper shape: two multi-domain datasets dominate the triple counts; the NBA
extracts are the smallest; every listed dataset is non-empty.
"""

from conftest import print_report

from repro.experiments import table_1


def test_table1_datasets(run_once):
    report = run_once(table_1)
    print_report(report)
    lines = [line for line in report.body.splitlines()[2:] if line.strip()]
    assert len(lines) == 8, "Table 1 lists eight datasets"
    first_dataset = lines[0].split()[0]
    assert first_dataset in ("dbpedia", "opencyc"), "multi-domain datasets dominate"
    assert "nba" in lines[-1].split()[0], "NBA extracts are smallest"
