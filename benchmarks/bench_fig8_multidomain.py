"""Figure 8 / Appendix B: linking the two multi-domain datasets.

Paper shape: the hardest pair (largest, most heterogeneous, most features).
ALEX converges with F > 0.9, and most correct links come from ALEX's
exploration rather than the automatic linker (paper: 12227 initial correct
links, 23476 additional discovered).
"""

from conftest import print_report

from repro.experiments import figure_8


def test_fig8_dbpedia_opencyc(run_once):
    report = run_once(figure_8)
    print_report(report)
    result = report.results["fig8"]
    assert result.final_quality.f_measure > 0.9, "paper: F > 0.9 at convergence"
    assert result.new_links_found > result.initial_link_count, (
        "ALEX discovers more correct links than the linker provided (paper: ~2x)"
    )
    assert result.relaxed_converged_at is not None, "relaxed convergence is reached"
