"""Section 6.2: multi-core execution of independent partitions.

The paper parallelizes partitions across 27 cores. This bench runs the
partitioned workload sequentially and with a process pool and verifies the
defining property: the merged result is *identical* (partitions share
nothing), with wall-clock differences being an implementation detail at our
dataset sizes (process startup can exceed the per-partition work).
"""

import time

from conftest import print_report

from repro.core import AlexConfig, run_partitions_parallel
from repro.evaluation import evaluate_links
from repro.evaluation.report import format_table
from repro.experiments import FigureReport, get_initial_links, get_pair
from repro.experiments.runner import LinkerSpec
from repro.features import build_partitioned_spaces

PAIR_KEY = "opencyc_nytimes"
LINKER = LinkerSpec(score_threshold=0.88, mutual_best=True, iterations=4)


def _run():
    pair = get_pair(PAIR_KEY)
    spaces = build_partitioned_spaces(pair.left, pair.right, 4)
    initial = get_initial_links(PAIR_KEY, LINKER)
    config = AlexConfig(episode_size=100, seed=7)

    timings = {}
    merged_results = {}
    for label, workers in (("sequential", 1), ("4 worker processes", None)):
        started = time.perf_counter()
        merged, outcomes = run_partitions_parallel(
            spaces, initial, pair.ground_truth, config,
            episode_size=100, max_episodes=20, max_workers=workers,
        )
        timings[label] = time.perf_counter() - started
        merged_results[label] = merged.snapshot()

    quality = evaluate_links(merged_results["sequential"], pair.ground_truth)
    rows = [
        (label, f"{seconds:.2f}", len(merged_results[label]))
        for label, seconds in timings.items()
    ]
    body = format_table(("execution", "seconds", "merged links"), rows)
    body += f"\nmerged quality: {quality}"
    report = FigureReport(
        "Section 6.2", "Parallel execution of independent partitions", body
    )
    report.results = {  # type: ignore[assignment]
        "identical": merged_results["sequential"] == merged_results["4 worker processes"],
        "quality": quality,
    }
    return report


def test_parallel_partitions(run_once):
    report = run_once(_run)
    print_report(report)
    assert report.results["identical"], (
        "parallel and sequential partition execution produce identical links"
    )
    assert report.results["quality"].f_measure > 0.8
