"""Ablation (beyond the paper): ε sensitivity of the ε-greedy policy.

The paper fixes ε implicitly; we sweep it. Expected shape: small ε exploits
the learned features and converges cleanly; very large ε behaves like the
random policy (more churn, worse precision dips), but all settings end with
usable link quality — the approach is not knife-edge sensitive.
"""

from conftest import print_report

from repro.evaluation.report import format_table
from repro.experiments import FigureReport, run_scenario, scenario


def _run():
    base = scenario("fig3a")
    results = {
        epsilon: run_scenario(base.with_changes(key=f"eps-{epsilon}", epsilon=epsilon))
        for epsilon in (0.05, 0.1, 0.3)
    }
    rows = [
        (
            epsilon,
            f"{r.final_quality.f_measure:.3f}",
            r.converged_at if r.converged_at is not None else f">{r.episodes_run}",
            f"{min(r.tracker.precision_series()[1:]):.3f}",
        )
        for epsilon, r in results.items()
    ]
    body = format_table(("epsilon", "final F", "converged at", "worst precision"), rows)
    return FigureReport(
        "Ablation", "ε sensitivity", body,
        {str(epsilon): result for epsilon, result in results.items()},
    )


def test_ablation_epsilon(run_once):
    report = run_once(_run)
    print_report(report)
    finals = [r.final_quality.f_measure for r in report.results.values()]
    assert min(finals) > 0.7, "no ε setting collapses"
    assert max(finals) - min(finals) < 0.3, "the approach is not knife-edge sensitive to ε"
