"""Feature-space construction: naive vs prepared fast path vs multi-process.

The pytest-benchmark counterpart of ``repro bench``: one timed run of the
medium bundle through each build mode, with the parity invariant asserted on
every run (the fast paths must admit exactly the naive links with exactly
the naive scores). The obs snapshot attached by ``run_once`` carries the
``space.build.*`` phase timers and ``similarity.cache.*`` counters, so saved
benchmark JSON shows where construction time goes and how well the caches
hit — not just the total.
"""

import pytest

from repro.bench import BUNDLE_SPECS, parity_mismatches
from repro.datasets import generate_pair
from repro.features import FeatureSpace
from repro.rdf.entity import entities_of
from repro.similarity.prepared import clear_caches

_MEDIUM = BUNDLE_SPECS[1]


@pytest.fixture(scope="module")
def medium_pair():
    pair = generate_pair(_MEDIUM)
    return list(entities_of(pair.left)), list(entities_of(pair.right))


@pytest.fixture(scope="module")
def naive_space(medium_pair):
    left, right = medium_pair
    return FeatureSpace.build(left, right, fast=False)


def test_space_build_naive(run_once, medium_pair):
    left, right = medium_pair
    space = run_once(lambda: FeatureSpace.build(left, right, fast=False))
    assert space.size > 0


def test_space_build_fast(run_once, medium_pair, naive_space):
    left, right = medium_pair
    clear_caches()
    space = run_once(lambda: FeatureSpace.build(left, right, fast=True))
    assert parity_mismatches(naive_space, space) == 0


def test_space_build_fast_mp(run_once, medium_pair, naive_space):
    left, right = medium_pair
    clear_caches()
    space = run_once(lambda: FeatureSpace.build(left, right, fast=True, workers=2))
    assert parity_mismatches(naive_space, space) == 0
