"""Beyond the paper: crowd feedback with majority voting.

Section 6.3 suggests refining noisy feedback by aggregating many users. This
bench compares ALEX under (a) correct feedback, (b) a single 25%-error user,
and (c) a 5-user panel of 25%-error users with majority voting — showing the
panel recovers most of the quality lost to individual noise.
"""

from conftest import print_report

from repro.core import AlexConfig, AlexEngine
from repro.evaluation import evaluate_links
from repro.evaluation.report import format_table
from repro.experiments import FigureReport, get_initial_links, get_pair, get_spaces
from repro.experiments.runner import LinkerSpec
from repro.feedback import FeedbackSession, GroundTruthOracle, MajorityVoteOracle, NoisyOracle

PAIR_KEY = "opencyc_nytimes"
LINKER = LinkerSpec(score_threshold=0.88, mutual_best=True, iterations=4)
ERROR_RATE = 0.25


def _run_with(oracle_factory, label: str):
    pair = get_pair(PAIR_KEY)
    space = get_spaces(PAIR_KEY, 0.3, 1)[0]
    initial = get_initial_links(PAIR_KEY, LINKER)
    engine = AlexEngine(space, initial, AlexConfig(episode_size=150, seed=7))
    session = FeedbackSession(engine, oracle_factory(GroundTruthOracle(pair.ground_truth)), seed=3)
    session.run(episode_size=150, max_episodes=25)
    return label, evaluate_links(engine.candidates, pair.ground_truth)


def _run():
    results = dict(
        [
            _run_with(lambda oracle: oracle, "correct feedback"),
            _run_with(
                lambda oracle: NoisyOracle(oracle, ERROR_RATE, seed=5),
                f"single user ({int(ERROR_RATE * 100)}% errors)",
            ),
            _run_with(
                lambda oracle: MajorityVoteOracle(oracle, panel_size=5,
                                                  error_rates=ERROR_RATE, seed=5),
                f"5-user majority panel ({int(ERROR_RATE * 100)}% each)",
            ),
        ]
    )
    rows = [
        (label, f"{q.precision:.3f}", f"{q.recall:.3f}", f"{q.f_measure:.3f}")
        for label, q in results.items()
    ]
    body = format_table(("feedback source", "precision", "recall", "f-measure"), rows)
    report = FigureReport("Beyond-paper", "Majority-vote crowd feedback", body)
    report.results = results  # type: ignore[assignment]
    return report


def test_crowd_feedback(run_once):
    report = run_once(_run)
    print_report(report)
    results = report.results
    correct = next(v for k, v in results.items() if k.startswith("correct"))
    single = next(v for k, v in results.items() if k.startswith("single"))
    panel = next(v for k, v in results.items() if k.startswith("5-user"))
    assert panel.f_measure > single.f_measure + 0.1, (
        "the panel recovers a substantial share of the quality lost to noise"
    )
    assert correct.f_measure >= panel.f_measure, "correct feedback remains the ceiling"
