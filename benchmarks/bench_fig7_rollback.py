"""Figure 7: effect of rollback.

Paper shape: without rollback, the wrong decisions of early episodes poison
precision and recovery is slow or absent (their run was still at P ≈ 0.3
after 100 episodes; some partitions never recover). With rollback, the same
workload converges in a fraction of the episodes.
"""

from conftest import print_report

from repro.experiments import figure_7


def test_fig7_rollback(run_once):
    report = run_once(figure_7)
    print_report(report)
    with_rollback = report.results["with"]
    without_rollback = report.results["without"]

    # Rollback converges strictly; without it convergence takes longer or
    # never happens within the budget.
    assert with_rollback.converged_at is not None, "rollback converges"
    if without_rollback.converged_at is not None:
        assert without_rollback.converged_at > with_rollback.converged_at, (
            "rollback converges in fewer episodes"
        )

    # The early-episode precision collapse is visible without rollback.
    early_without = min(without_rollback.tracker.precision_series()[1:6])
    assert early_without < 0.3, "early precision collapses without rollback"

    # Partitioned runs without rollback fail to converge (paper 7(c)).
    assert "never" in report.body, "some partition never converges without rollback"
